//! Disk-spill fault tolerance: whatever is on disk — truncated files,
//! flipped bytes, stale version stamps, other keys' entries, concurrent
//! writers — a probe degrades to a miss (and an accounted load error),
//! never to a panic or another function's hypotheses.

use slade_compiler::{Isa, OptLevel};
use slade_serve::{CacheKey, ResultCache, SpillProbe, SpillTier};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Self-cleaning unique temp directory (no tempfile dep in-tree).
struct TempDir {
    path: PathBuf,
}

fn tempdir(tag: &str) -> TempDir {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "slade-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::create_dir_all(&path).expect("create tempdir");
    TempDir { path }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn key(i: usize) -> (CacheKey, String) {
    let norm = format!("f{i}:\nmovl %edi, %eax\nret");
    (CacheKey::new(&norm, Isa::X86_64, OptLevel::O0, 3, 16), norm)
}

fn outputs(i: usize) -> Vec<String> {
    vec![
        format!("int f{i}(int a) {{ return a; }}"),
        format!("int f{i}(int a) {{ return a + 0; }}"),
    ]
}

#[test]
fn roundtrip_hit_after_store() {
    let dir = tempdir("spill-roundtrip");
    let tier = SpillTier::new(dir.path.clone(), 0);
    let (k, norm) = key(1);
    assert!(matches!(tier.probe(&k, &norm), SpillProbe::Miss), "empty tier misses");
    tier.store(&k, &norm, &outputs(1)).expect("store");
    match tier.probe(&k, &norm) {
        SpillProbe::Hit(got) => assert_eq!(got, outputs(1)),
        other => panic!("expected hit, got {other:?}"),
    }
    assert_eq!(tier.entries(), 1);
}

#[test]
fn truncated_file_is_a_removed_miss() {
    let dir = tempdir("spill-trunc");
    let tier = SpillTier::new(dir.path.clone(), 0);
    let (k, norm) = key(2);
    tier.store(&k, &norm, &outputs(2)).expect("store");
    let path = tier.path_for(&k);
    let bytes = std::fs::read(&path).expect("read entry");
    // Every truncation point — inside the magic, the checksum line, the
    // JSON payload — must degrade to Corrupt, never panic.
    for cut in [0, 5, 13, 20, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).expect("truncate");
        assert!(
            matches!(tier.probe(&k, &norm), SpillProbe::Corrupt),
            "cut at {cut} not detected",
        );
        assert!(!path.exists(), "corrupt entry must be invalidated (cut {cut})");
    }
}

#[test]
fn flipped_payload_byte_fails_the_checksum() {
    let dir = tempdir("spill-flip");
    let tier = SpillTier::new(dir.path.clone(), 0);
    let (k, norm) = key(3);
    tier.store(&k, &norm, &outputs(3)).expect("store");
    let path = tier.path_for(&k);
    let mut bytes = std::fs::read(&path).expect("read entry");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x20; // still printable JSON-ish, caught by the checksum
    std::fs::write(&path, &bytes).expect("corrupt");
    assert!(matches!(tier.probe(&k, &norm), SpillProbe::Corrupt));
    assert!(!path.exists());
}

#[test]
fn version_stamp_mismatch_invalidates() {
    let dir = tempdir("spill-version");
    let tier = SpillTier::new(dir.path.clone(), 0);
    let (k, norm) = key(4);
    tier.store(&k, &norm, &outputs(4)).expect("store");
    let path = tier.path_for(&k);
    let text = std::fs::read(&path).expect("read entry");
    let stale =
        String::from_utf8(text).unwrap().replacen("SLADESPILL v1", "SLADESPILL v999", 1);
    std::fs::write(&path, stale).expect("rewrite");
    assert!(
        matches!(tier.probe(&k, &norm), SpillProbe::Corrupt),
        "a future/stale stamp must invalidate, not parse",
    );
    assert!(!path.exists(), "stale entry removed so the next decode rewrites it");
}

#[test]
fn entry_for_a_different_key_is_a_miss_not_wrong_bytes() {
    let dir = tempdir("spill-collide");
    let tier = SpillTier::new(dir.path.clone(), 0);
    let (k_a, norm_a) = key(5);
    let (k_b, norm_b) = key(6);
    tier.store(&k_b, &norm_b, &outputs(6)).expect("store");
    // Simulate a filename collision: B's (valid, checksummed) entry
    // sitting at A's path. The full-key+text check must refuse it.
    std::fs::rename(tier.path_for(&k_b), tier.path_for(&k_a)).expect("rename");
    assert!(matches!(tier.probe(&k_a, &norm_a), SpillProbe::Miss));
    assert!(tier.path_for(&k_a).exists(), "a valid foreign entry is left in place");
}

#[test]
fn capacity_evicts_oldest_entries() {
    let dir = tempdir("spill-evict");
    let tier = SpillTier::new(dir.path.clone(), 3);
    let mut evicted = 0;
    for i in 0..5 {
        let (k, norm) = key(i);
        evicted += tier.store(&k, &norm, &outputs(i)).expect("store");
        // mtime granularity on some filesystems is coarse; space the
        // writes so LRU order is well-defined.
        std::thread::sleep(std::time::Duration::from_millis(15));
    }
    assert_eq!(evicted, 2, "two stores past capacity evict one each");
    assert_eq!(tier.entries(), 3);
    // The newest entries survived.
    let (k4, norm4) = key(4);
    assert!(matches!(tier.probe(&k4, &norm4), SpillProbe::Hit(_)));
}

#[test]
fn concurrent_writers_never_interleave() {
    let dir = tempdir("spill-race");
    // Two "runtimes" (caches) sharing the directory, four threads each
    // hammering the same small key set: staged-write + atomic-rename
    // must keep every published entry complete and checksummed.
    let caches: Vec<_> =
        (0..2).map(|_| ResultCache::with_spill(8, dir.path.clone(), 0)).collect();
    let caches = std::sync::Arc::new(caches);
    let threads: Vec<_> = (0..4usize)
        .map(|t| {
            let caches = std::sync::Arc::clone(&caches);
            std::thread::spawn(move || {
                for round in 0..25 {
                    let i = (t + round) % 3;
                    let (k, norm) = key(i);
                    caches[t % 2].insert(k, &norm, outputs(i));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("writer thread");
    }
    // Every surviving entry parses cleanly and returns the right bytes.
    let tier = SpillTier::new(dir.path.clone(), 0);
    for i in 0..3 {
        let (k, norm) = key(i);
        match tier.probe(&k, &norm) {
            SpillProbe::Hit(got) => assert_eq!(got, outputs(i)),
            other => panic!("entry {i} damaged by concurrent writers: {other:?}"),
        }
    }
    // No staging debris left behind.
    let stray = std::fs::read_dir(&dir.path)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with(".stage-"))
        .count();
    assert_eq!(stray, 0, "staging files must be renamed away");
}

#[test]
fn cache_accounts_spill_hits_and_load_errors() {
    let dir = tempdir("spill-stats");
    let (k, norm) = key(7);
    // First cache instance decodes and spills.
    let first = ResultCache::with_spill(4, dir.path.clone(), 0);
    first.insert(k, &norm, outputs(7));
    assert_eq!(first.stats().spill_writes, 1);
    // A "restarted" instance (cold memory) hits the disk tier, then
    // serves the promoted entry from memory.
    let second = ResultCache::with_spill(4, dir.path.clone(), 0);
    assert_eq!(second.get(&k, &norm), Some(outputs(7)));
    let s = second.stats();
    assert_eq!((s.hits, s.spill_hits), (1, 1));
    assert_eq!(second.get(&k, &norm), Some(outputs(7)));
    let s = second.stats();
    assert_eq!((s.hits, s.spill_hits), (2, 1), "second hit served from memory");
    // Corrupt the file: a third cold instance sees a miss + load error.
    let tier = SpillTier::new(dir.path.clone(), 0);
    std::fs::write(tier.path_for(&k), b"SLADESPILL v1\ngarbage").expect("corrupt");
    let third = ResultCache::with_spill(4, dir.path.clone(), 0);
    assert_eq!(third.get(&k, &norm), None);
    let s = third.stats();
    assert_eq!((s.misses, s.spill_load_errors), (1, 1));
}
