//! Deterministic fault injection for the admission tier: seeded burst
//! arrivals, duplicate-heavy workloads, deliberately-undersized queue
//! caps, and artificially slow shards (the `test_decode_delay` hook)
//! drive every admission terminal — shed, expired, coalesced, decoded,
//! cache hit — and every test closes with the *counter-conservation
//! invariant*:
//!
//! ```text
//! submitted == shed + expired + coalesced + decoded + cache hits
//! ```
//!
//! i.e. no request is lost and no request is counted (or delivered)
//! twice, no matter how the faults interleave.

use slade::Slade;
use slade_compiler::{Isa, OptLevel};
use slade_nn::{Seq2Seq, TransformerConfig};
use slade_serve::{MetricsSnapshot, ServeConfig, ServeRuntime, SubmitError};
use slade_tokenizer::UnigramTokenizer;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BEAM: usize = 3;

/// Untrained small-profile decompiler (decode cost is representative,
/// hypotheses are noise — these tests assert accounting, not output).
fn faulty_slade() -> Arc<Slade> {
    let corpus: Vec<String> = (0..12).map(asm).collect();
    let tokenizer = UnigramTokenizer::train(&corpus, 200);
    let model = Seq2Seq::new(TransformerConfig::small(tokenizer.vocab_size()), 23);
    Arc::new(Slade::from_parts(model, tokenizer, Isa::X86_64, OptLevel::O0, BEAM, 10))
}

fn asm(i: usize) -> String {
    format!("f{i}:\n\tmovl %edi, %eax\n\taddl ${i}, %eax\n\tret\n")
}

fn assert_conservation(snap: &MetricsSnapshot) {
    assert_eq!(
        snap.shed + snap.expired + snap.coalesced + snap.decoded + snap.cache.hits,
        snap.submitted,
        "conservation violated: {snap:?}",
    );
}

/// Blocks until the queue gauge drains to zero (workers popped all
/// queued jobs), bounded so a regression fails instead of hanging.
fn await_drained_queue(runtime: &ServeRuntime) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while runtime.metrics().queue_depth > 0 {
        assert!(Instant::now() < deadline, "queue never drained");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Undersized cap + a slow shard: with the worker busy, exactly
/// `queue_cap` fallible submissions are accepted and every further one
/// sheds with `Overloaded` — and the shed counter, the handles, and the
/// Prometheus family all agree.
#[test]
fn shed_exactly_when_queue_full() {
    let runtime = ServeRuntime::start(
        faulty_slade(),
        ServeConfig {
            shards: 1,
            lanes_per_shard: BEAM, // one request decodes at a time
            queue_cap: 3,
            test_decode_delay: Duration::from_millis(150),
            ..ServeConfig::default().without_cache().without_coalescing()
        },
    );
    // Occupy the only worker, then wait until it has *popped* the job so
    // the queue is observably empty before the burst.
    let busy = runtime.submit(&asm(0));
    await_drained_queue(&runtime);
    // Burst of 7 distinct requests against a cap of 3: deterministic
    // 3 accepts + 4 sheds (the worker is asleep in the delay hook and
    // cannot drain between submissions).
    let mut accepted = Vec::new();
    let mut shed = 0u64;
    for i in 1..=7 {
        match runtime.try_submit(&asm(i)) {
            Ok(h) => accepted.push(h),
            Err(e) => {
                assert_eq!(e, SubmitError::Overloaded);
                shed += 1;
            }
        }
    }
    assert_eq!(accepted.len(), 3, "exactly queue_cap accepts");
    assert_eq!(shed, 4);
    busy.wait().expect("no timeout configured");
    for h in accepted {
        h.wait().expect("accepted requests complete");
    }
    let snap = runtime.metrics();
    assert_eq!(snap.submitted, 8);
    assert_eq!(snap.shed, 4);
    assert_eq!(snap.decoded, 4);
    assert_eq!(snap.expired + snap.coalesced + snap.cache.hits, 0);
    assert_conservation(&snap);
    assert!(
        runtime.metrics_text().contains("slade_shed_total 4"),
        "shed count must reach the exposition",
    );
    runtime.shutdown();
}

/// The regression the issue calls out: a request whose deadline expires
/// while *queued behind a slow decode* must resolve promptly with
/// `DeadlineExceeded` — not block until the decode finishes.
#[test]
fn expired_waiter_returns_promptly() {
    let delay = Duration::from_millis(400);
    let runtime = ServeRuntime::start(
        faulty_slade(),
        ServeConfig {
            shards: 1,
            lanes_per_shard: BEAM,
            request_timeout: Duration::from_millis(50),
            test_decode_delay: delay,
            ..ServeConfig::default().without_cache().without_coalescing()
        },
    );
    // A occupies the worker (and will itself expire mid-decode: the
    // delay exceeds its own deadline). B queues behind it.
    let a = runtime.submit(&asm(0));
    await_drained_queue(&runtime);
    let b = runtime.submit(&asm(1));
    let t0 = Instant::now();
    let err = b.wait().expect_err("deadline must expire");
    let waited = t0.elapsed();
    assert_eq!(err, SubmitError::DeadlineExceeded);
    assert!(
        waited < delay - Duration::from_millis(50),
        "wait blocked {waited:?} — the expired waiter waited out the decode",
    );
    assert_eq!(a.wait().expect_err("A expired too"), SubmitError::DeadlineExceeded);
    // Let the worker pop B and observe its lost claim (cancelled decode).
    await_drained_queue(&runtime);
    std::thread::sleep(2 * delay);
    let snap = runtime.metrics();
    assert_eq!(snap.submitted, 2);
    assert_eq!(snap.expired, 2);
    assert_eq!(snap.decoded, 0, "expired work must not count as decoded");
    assert_conservation(&snap);
    runtime.shutdown();
}

/// Duplicate-heavy workload with the cache off: all duplicates of an
/// in-flight decode collapse onto one engine pass and every waiter gets
/// an identical result.
#[test]
fn duplicates_coalesce_onto_one_decode() {
    let runtime = ServeRuntime::start(
        faulty_slade(),
        ServeConfig {
            shards: 1,
            lanes_per_shard: BEAM,
            test_decode_delay: Duration::from_millis(100),
            ..ServeConfig::default().without_cache()
        },
    );
    // Distinct leader occupies the worker so the duplicates below are
    // all submitted while their own leader is still queued/decoding.
    let first = runtime.submit(&asm(0));
    let dupes: Vec<_> = (0..6).map(|_| runtime.submit(&asm(1))).collect();
    let lead = first.wait().expect("no timeout configured");
    assert!(!lead.is_empty());
    let outputs: Vec<_> =
        dupes.into_iter().map(|h| h.wait().expect("no timeout configured")).collect();
    for o in &outputs[1..] {
        assert_eq!(o, &outputs[0], "fanned-out results must be identical");
    }
    let snap = runtime.metrics();
    assert_eq!(snap.submitted, 7);
    assert_eq!(snap.decoded, 2, "one decode per distinct text");
    assert_eq!(snap.coalesced, 5, "five duplicates attached to the in-flight decode");
    assert_eq!(snap.cache.hits, 0);
    assert_conservation(&snap);
    // Only two jobs ever entered the queue.
    assert_eq!(runtime.admission_order().len(), 2);
    assert!(runtime.metrics_text().contains("slade_coalesced_total 5"));
    runtime.shutdown();
}

/// Coalescing and the result cache compose: duplicates of an in-flight
/// decode coalesce, duplicates after it completes hit the cache, and the
/// conservation sum still partitions exactly.
#[test]
fn coalesce_with_cache_hits_accounting() {
    let runtime = ServeRuntime::start(
        faulty_slade(),
        ServeConfig {
            shards: 1,
            lanes_per_shard: BEAM,
            test_decode_delay: Duration::from_millis(100),
            ..ServeConfig::default()
        },
    );
    let leader = runtime.submit(&asm(2));
    let attached: Vec<_> = (0..3).map(|_| runtime.submit(&asm(2))).collect();
    let expect = leader.wait().expect("no timeout configured");
    for h in attached {
        assert_eq!(h.wait().expect("no timeout configured"), expect);
    }
    // After completion the entry is cached: two more are plain hits.
    for _ in 0..2 {
        assert_eq!(runtime.decompile(&asm(2)), expect);
    }
    let snap = runtime.metrics();
    assert_eq!(snap.submitted, 6);
    assert_eq!(snap.decoded, 1);
    assert_eq!(snap.coalesced, 3);
    assert_eq!(snap.cache.hits, 2);
    assert_conservation(&snap);
    runtime.shutdown();
}

/// Seeded concurrent bursts across every fault at once — undersized
/// caps, tight timeouts, duplicate-heavy arrivals, slow shards — from
/// several submitter threads. Whatever interleaving each seed produces,
/// every handle resolves to exactly one outcome and the counters
/// partition `submitted` exactly.
#[test]
fn seeded_burst_conservation() {
    for seed in 0u64..6 {
        let cap = [0usize, 2, 5][seed as usize % 3];
        let timeout = [Duration::ZERO, Duration::from_millis(60)][seed as usize % 2];
        let runtime = ServeRuntime::start(
            faulty_slade(),
            ServeConfig {
                shards: 2,
                lanes_per_shard: BEAM,
                queue_cap: cap,
                request_timeout: timeout,
                test_decode_delay: Duration::from_millis(20),
                ..ServeConfig::default()
            },
        );
        let runtime = Arc::new(runtime);
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let rt = Arc::clone(&runtime);
                std::thread::spawn(move || {
                    // Per-thread LCG stream: duplicate-heavy (8 distinct
                    // texts across 48 submissions) with jittered arrivals.
                    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(t);
                    let mut ok = 0u64;
                    let mut shed = 0u64;
                    let mut expired = 0u64;
                    for _ in 0..12 {
                        s = s
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let idx = ((s >> 33) % 8) as usize;
                        if s % 3 == 0 {
                            std::thread::sleep(Duration::from_millis(s % 7));
                        }
                        match rt.try_submit(&asm(idx)) {
                            Err(SubmitError::Overloaded) => shed += 1,
                            Err(SubmitError::DeadlineExceeded) => unreachable!(),
                            Ok(h) => match h.wait() {
                                Ok(out) => {
                                    assert!(!out.is_empty());
                                    ok += 1;
                                }
                                Err(SubmitError::DeadlineExceeded) => expired += 1,
                                Err(SubmitError::Overloaded) => unreachable!(),
                            },
                        }
                    }
                    (ok, shed, expired)
                })
            })
            .collect();
        let mut ok = 0u64;
        let mut shed = 0u64;
        let mut expired = 0u64;
        for t in threads {
            let (o, s, e) = t.join().expect("submitter thread");
            ok += o;
            shed += s;
            expired += e;
        }
        // Expired queued jobs are cancelled lazily (next pop); drain so
        // the worker-side expiry accounting is complete before snapshot.
        await_drained_queue(&runtime);
        std::thread::sleep(Duration::from_millis(200));
        let snap = runtime.metrics();
        assert_eq!(snap.submitted, 48, "seed {seed}");
        assert_eq!(snap.shed, shed, "seed {seed}: handle-side shed count");
        assert_eq!(snap.expired, expired, "seed {seed}: handle-side expiry count");
        assert_eq!(
            snap.decoded + snap.coalesced + snap.cache.hits,
            ok,
            "seed {seed}: every Ok handle was decoded, coalesced, or a hit",
        );
        assert_conservation(&snap);
        Arc::try_unwrap(runtime).ok().expect("all threads joined").shutdown();
    }
}
