//! Property tests for [`slade_serve::RequestHandle::try_take`] — the
//! non-blocking delivery path the HTTP gateway's polling pool rides on.
//!
//! The contract under test is **claim-once delivery**: however a
//! handle's outcome is consumed — a polling loop hammering `try_take`,
//! a blocking `wait`, or both racing across coalesced duplicates of one
//! decode — each handle yields its outcome exactly once, every consumer
//! of the same input sees an identical result, and the admission
//! counters still partition `submitted` exactly.

use proptest::prelude::*;
use slade::Slade;
use slade_compiler::{Isa, OptLevel};
use slade_nn::{Seq2Seq, TransformerConfig};
use slade_serve::{MetricsSnapshot, ServeConfig, ServeRuntime, SubmitError};
use slade_tokenizer::UnigramTokenizer;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BEAM: usize = 3;

/// Untrained small-profile decompiler (these tests assert delivery
/// semantics and accounting, not output quality).
fn poll_slade() -> Arc<Slade> {
    let corpus: Vec<String> = (0..10).map(asm).collect();
    let tokenizer = UnigramTokenizer::train(&corpus, 200);
    let model = Seq2Seq::new(TransformerConfig::small(tokenizer.vocab_size()), 31);
    Arc::new(Slade::from_parts(model, tokenizer, Isa::X86_64, OptLevel::O0, BEAM, 10))
}

fn asm(i: usize) -> String {
    format!("g{i}:\n\tmovl %edi, %eax\n\tsubl ${i}, %eax\n\tret\n")
}

fn assert_conservation(snap: &MetricsSnapshot) {
    assert_eq!(
        snap.shed + snap.expired + snap.coalesced + snap.decoded + snap.cache.hits,
        snap.submitted,
        "conservation violated: {snap:?}",
    );
}

/// Polls `try_take` until the outcome appears, bounded so a delivery
/// regression fails instead of hanging the suite.
fn poll_until_taken(handle: &slade_serve::RequestHandle) -> Result<Vec<String>, SubmitError> {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(outcome) = handle.try_take() {
            return outcome;
        }
        assert!(Instant::now() < deadline, "try_take never produced an outcome");
        std::thread::sleep(Duration::from_millis(1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Coalesced duplicates of one input, consumed by a racing mix of
    /// polling threads (repeated `try_take`) and blocking waiters
    /// (`wait`): every consumer sees the identical hypotheses, each
    /// handle's outcome is delivered exactly once (the next `try_take`
    /// after success returns `None`), and the counters agree that one
    /// decode fanned out to all the rest.
    #[test]
    fn poll_and_wait_racers_each_get_one_outcome(
        pollers in 1usize..=4,
        waiters in 1usize..=4,
        delay_ms in 20u64..=80,
    ) {
        let runtime = Arc::new(ServeRuntime::start(
            poll_slade(),
            ServeConfig {
                shards: 1,
                lanes_per_shard: BEAM, // one decode at a time
                test_decode_delay: Duration::from_millis(delay_ms),
                ..ServeConfig::default().without_cache()
            },
        ));
        let total = pollers + waiters;
        let handles: Vec<_> = (0..total).map(|_| runtime.submit(&asm(0))).collect();
        let mut threads = Vec::new();
        for (i, handle) in handles.into_iter().enumerate() {
            threads.push(std::thread::spawn(move || {
                if i < pollers {
                    let out = poll_until_taken(&handle);
                    // Claim-once: the outcome was taken; a second poll
                    // must observe the emptied slot.
                    assert!(handle.try_take().is_none(), "outcome delivered twice");
                    out
                } else {
                    handle.wait()
                }
            }));
        }
        let outcomes: Vec<_> =
            threads.into_iter().map(|t| t.join().expect("consumer thread")).collect();
        let first = outcomes[0].as_ref().expect("no timeout configured");
        prop_assert!(!first.is_empty());
        for o in &outcomes {
            prop_assert_eq!(o.as_ref().expect("no timeout configured"), first);
        }
        let snap = runtime.metrics();
        prop_assert_eq!(snap.submitted, total as u64);
        prop_assert_eq!(snap.decoded, 1u64, "exactly one engine pass");
        prop_assert_eq!(snap.coalesced, (total - 1) as u64);
        assert_conservation(&snap);
        Arc::try_unwrap(runtime).ok().expect("threads joined").shutdown();
    }
}

/// A polling consumer behind a slow decode with a tight request timeout:
/// the worker's pop-time triage expires the queued job, so the poll loop
/// observes `DeadlineExceeded` — delivered once, counted once.
#[test]
fn polling_observes_deadline_expiry_exactly_once() {
    let runtime = ServeRuntime::start(
        poll_slade(),
        ServeConfig {
            shards: 1,
            lanes_per_shard: BEAM,
            request_timeout: Duration::from_millis(50),
            test_decode_delay: Duration::from_millis(300),
            ..ServeConfig::default().without_cache().without_coalescing()
        },
    );
    // Busy occupies the only worker past its own deadline; B expires in
    // the queue and is triaged when the worker finally pops it.
    let busy = runtime.submit(&asm(1));
    let b = runtime.submit(&asm(2));
    let out = poll_until_taken(&b);
    assert_eq!(out.expect_err("deadline must expire"), SubmitError::DeadlineExceeded);
    assert!(b.try_take().is_none(), "expiry delivered twice");
    // Busy was popped *before* its deadline and nobody claimed expiry
    // while it decoded, so its late result is still delivered intact.
    busy.wait().expect("unclaimed slot is fulfilled by the decode");
    let snap = runtime.metrics();
    assert_eq!(snap.submitted, 2);
    assert_eq!(snap.expired, 1, "only the queued request expired");
    assert_eq!(snap.decoded, 1);
    assert_conservation(&snap);
    runtime.shutdown();
}

/// `try_take` before completion is a pure peek-and-miss: it returns
/// `None` without consuming, corrupting, or expiring anything, and the
/// eventual outcome is still delivered intact.
#[test]
fn premature_polls_do_not_disturb_delivery() {
    let runtime = ServeRuntime::start(
        poll_slade(),
        ServeConfig {
            shards: 1,
            lanes_per_shard: BEAM,
            test_decode_delay: Duration::from_millis(150),
            ..ServeConfig::default().without_cache().without_coalescing()
        },
    );
    let expected = runtime.slade().decompile(&asm(3));
    let handle = runtime.submit(&asm(3));
    let mut misses = 0u32;
    let out = loop {
        match handle.try_take() {
            Some(outcome) => break outcome,
            None => misses += 1,
        }
    };
    assert!(misses > 0, "decode delay guarantees at least one miss");
    assert_eq!(out.expect("no timeout configured"), expected);
    assert!(handle.try_take().is_none());
    let snap = runtime.metrics();
    // The sequential `expected` went straight to the model, not through
    // admission: only the polled handle is accounted.
    assert_eq!(snap.submitted, 1);
    assert_eq!(snap.expired, 0);
    assert_conservation(&snap);
    runtime.shutdown();
}
