//! Scrape smoke + span-tree invariants (the CI observability gate):
//! start a runtime, serve a batch, then assert the Prometheus exposition
//! parses with real decode counts and that a traced request shows the
//! complete span tree (queue → tokenize → encode → decode → steps).

use slade::Slade;
use slade_compiler::{Isa, OptLevel};
use slade_nn::{Seq2Seq, TransformerConfig};
use slade_obs::Stage;
use slade_serve::{ServeConfig, ServeRuntime};
use slade_tokenizer::UnigramTokenizer;
use std::sync::Arc;

const BEAM: usize = 3;

/// Untrained small-profile decompiler: decode cost and the whole serving
/// path are representative without minutes of training.
fn smoke_slade() -> Arc<Slade> {
    let corpus: Vec<String> = (0..12).map(asm).collect();
    let tokenizer = UnigramTokenizer::train(&corpus, 200);
    let model = Seq2Seq::new(TransformerConfig::small(tokenizer.vocab_size()), 11);
    Arc::new(Slade::from_parts(model, tokenizer, Isa::X86_64, OptLevel::O0, BEAM, 12))
}

fn asm(i: usize) -> String {
    format!("f{i}:\n\tmovl %edi, %eax\n\taddl ${i}, %eax\n\tret\n")
}

#[test]
fn scrape_and_trace_smoke() {
    let slade = smoke_slade();
    let runtime = ServeRuntime::start(Arc::clone(&slade), ServeConfig::with_shards(2));
    let workload: Vec<String> = (0..4).map(asm).collect();
    let handles: Vec<_> = workload.iter().map(|a| runtime.submit(a)).collect();
    let trace_ids: Vec<u64> = handles.iter().map(|h| h.trace_id()).collect();
    for h in handles {
        assert!(!h.wait().expect("no timeout configured").is_empty());
    }

    // --- Scrape: exposition parses, decode actually happened. ---
    let text = runtime.metrics_text();
    let stats = slade_obs::export::validate_exposition(&text)
        .unwrap_or_else(|e| panic!("malformed exposition: {e}\n{text}"));
    assert!(stats.families >= 20, "expected a full surface, got {}", stats.families);
    assert!(stats.values["slade_decode_tokens_total"] > 0.0, "no decode tokens counted");
    assert_eq!(stats.values["slade_requests_completed_total"], 4.0);
    // Admission-tier families are always exposed, even at zero.
    assert_eq!(stats.values["slade_shed_total"], 0.0);
    assert_eq!(stats.values["slade_expired_total"], 0.0);
    assert_eq!(stats.values["slade_coalesced_total"], 0.0);
    assert_eq!(stats.values["slade_decoded_total"], 4.0);
    assert_eq!(stats.values["slade_spill_hits_total"], 0.0);
    // All requests drained: the saturating-decrement gauge is back to 0.
    let snap = runtime.metrics();
    assert_eq!(snap.queue_depth, 0, "queue_depth must return to zero");
    assert!(snap.p50_latency_ms >= 0.0 && snap.p99_latency_ms >= snap.p50_latency_ms);

    // --- Span tree: every decoded request is complete and well-formed. ---
    for &tid in &trace_ids {
        let spans = runtime.trace_spans(tid);
        let find = |st: Stage| spans.iter().find(|s| s.stage == st);
        let root = find(Stage::Request).expect("root request span");
        assert_eq!(root.parent, 0, "request span is the root");
        assert_eq!(root.detail, 0, "decoded request, not a cache hit");
        let queue = find(Stage::Queue).expect("queue span");
        let tokenize = find(Stage::Tokenize).expect("tokenize span");
        let encode = find(Stage::Encode).expect("encode span");
        let decode = find(Stage::Decode).expect("decode span");
        for child in [queue, tokenize, encode, decode] {
            assert_eq!(child.parent, root.span_id, "stage spans parent to the root");
            assert!(
                child.start_us >= root.start_us
                    && child.start_us + child.dur_us <= root.start_us + root.dur_us + 1_000,
                "child {:?} outside root window",
                child.stage
            );
        }
        // Ordering: queue starts at submit, decode follows encode.
        assert_eq!(queue.start_us, root.start_us);
        assert!(decode.start_us >= encode.start_us);
        // Per-step children: as many as the decode span reports, all
        // parented to it, step ids consecutive from the first step id.
        let mut steps: Vec<_> = spans.iter().filter(|s| s.stage == Stage::DecodeStep).collect();
        steps.sort_by_key(|s| s.span_id);
        assert_eq!(steps.len() as u64, decode.detail, "decode.detail counts steps");
        assert!(!steps.is_empty(), "at least one decode step");
        for (k, s) in steps.iter().enumerate() {
            assert_eq!(s.parent, decode.span_id, "steps parent to the decode span");
            assert_eq!(s.span_id, steps[0].span_id + k as u32, "step ids consecutive");
        }
        // Span ids unique within the trace.
        let mut ids: Vec<u32> = spans.iter().map(|s| s.span_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), spans.len(), "duplicate span ids in trace {tid}");
        // The tree renders with the root on the first line.
        let tree = slade_obs::render_tree(&spans);
        assert!(tree.starts_with("request"), "tree:\n{tree}");
    }

    // --- Cache hit: root span flags it, no decode spans. ---
    let h = runtime.submit(&workload[0]);
    let hit_tid = h.trace_id();
    assert!(!h.wait().expect("no timeout configured").is_empty());
    let hit_spans = runtime.trace_spans(hit_tid);
    let hit_root =
        hit_spans.iter().find(|s| s.stage == Stage::Request).expect("cache-hit root span");
    assert_eq!(hit_root.detail, 1, "cache hit flagged on the root span");
    assert!(hit_spans.iter().any(|s| s.stage == Stage::Cache));
    assert!(!hit_spans.iter().any(|s| s.stage == Stage::Decode));

    runtime.shutdown();
}
