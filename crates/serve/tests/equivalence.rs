//! The serving runtime's load-bearing contract: for **any** shard count,
//! arrival order, duplicate ratio, and cache/coalesce/spill setting, its
//! output is element-wise identical to sequential
//! [`Slade::decompile_batch`] — plus fairness (admission follows arrival
//! under sustained load), warm-start (a restarted runtime answers from
//! the spill tier without decoding), and metrics sanity.

use proptest::prelude::*;
use slade::{Slade, SladeBuilder, TrainProfile};
use slade_compiler::{Isa, OptLevel};
use slade_dataset::{generate_train, DatasetProfile};
use slade_serve::{ServeConfig, ServeRuntime};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One trained tiny decompiler plus a workload of real compiled assembly,
/// shared by every test in the file (training dominates test cost).
fn fixture() -> &'static (Arc<Slade>, Vec<String>) {
    static FIXTURE: OnceLock<(Arc<Slade>, Vec<String>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let items = generate_train(DatasetProfile::tiny(), 13);
        let slade = SladeBuilder::new(Isa::X86_64, OptLevel::O0)
            .profile(TrainProfile::tiny())
            .beam(3)
            .train(&items, 13);
        // Deduplicate by normalized text so cache-accounting assertions
        // can rely on every workload entry being a distinct cache line.
        let mut seen = std::collections::HashSet::new();
        let asms: Vec<String> = slade::make_pairs(&items, Isa::X86_64, OptLevel::O0)
            .into_iter()
            .map(|(asm, _)| asm)
            .filter(|asm| seen.insert(slade::normalize_asm(asm)))
            .take(8)
            .collect();
        assert!(asms.len() >= 4, "need a workload, got {}", asms.len());
        (Arc::new(slade), asms)
    })
}

/// Deterministic permutation of `0..n` from a seed (Fisher-Yates with a
/// splitmix-style stream).
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline property: threads × arrival order × duplicate ratio
    /// × cache × coalescing × spill ⇒ every request gets exactly what
    /// sequential `decompile_batch` returns, per element — whether it
    /// was decoded, cache-hit, coalesced onto another decode, or loaded
    /// from disk.
    #[test]
    fn runtime_output_is_identical_to_sequential(
        shards in 1usize..=4,
        perm_seed in 0u64..1_000_000,
        cache_on in 0u8..2,
        coalesce_on in 0u8..2,
        spill_on in 0u8..2,
        duplicates in 0usize..=8,
    ) {
        let (slade, asms) = fixture();
        let expected = slade.decompile_batch(
            &asms.iter().map(String::as_str).collect::<Vec<&str>>(),
        );
        let mut config = ServeConfig::with_shards(shards);
        if cache_on == 0 {
            config = config.without_cache();
        }
        if coalesce_on == 0 {
            config = config.without_coalescing();
        }
        let spill_dir = (spill_on == 1).then(|| tempdir("equiv-spill"));
        if let Some(dir) = &spill_dir {
            config = config.with_spill_dir(dir.path.clone());
        }
        // Small per-shard budgets force multi-round admission (requests
        // genuinely join running batches as lanes free up).
        config.lanes_per_shard = slade.beam() * 2;
        let runtime = ServeRuntime::start(Arc::clone(slade), config);
        // Submit in a random arrival order; duplicates exercise the
        // cache and (duplicate-heavy cases) the coalescing table.
        let total = asms.len() + duplicates;
        let order = permutation(total, perm_seed);
        let handles: Vec<(usize, slade_serve::RequestHandle)> = order
            .iter()
            .map(|&i| {
                let idx = i % asms.len();
                (idx, runtime.submit(&asms[idx]))
            })
            .collect();
        for (idx, handle) in handles {
            let got = handle.wait().expect("infallible submit never errors");
            prop_assert_eq!(&got, &expected[idx], "request {} diverged", idx);
        }
        let snap = runtime.metrics();
        prop_assert_eq!(snap.completed, total as u64);
        prop_assert_eq!(snap.shed, 0u64);
        prop_assert_eq!(snap.expired, 0u64);
        // Counter conservation: every submission has exactly one terminal.
        prop_assert_eq!(
            snap.shed + snap.expired + snap.coalesced + snap.decoded + snap.cache.hits,
            snap.submitted,
        );
        runtime.shutdown();
    }
}

/// Self-cleaning unique temp directory (no tempfile dep in-tree).
struct TempDir {
    path: std::path::PathBuf,
}

fn tempdir(tag: &str) -> TempDir {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "slade-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::create_dir_all(&path).expect("create tempdir");
    TempDir { path }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// The kill-and-restart warm-start case: a second runtime pointed at the
/// first one's spill directory answers the same workload from disk —
/// zero decoded tokens, byte-identical hypotheses.
#[test]
fn restarted_runtime_starts_warm_from_spill() {
    let (slade, asms) = fixture();
    let dir = tempdir("warm-start");
    let refs: Vec<&str> = asms.iter().map(String::as_str).collect();
    let config = ServeConfig::with_shards(2).with_spill_dir(dir.path.clone());
    let first = ServeRuntime::start(Arc::clone(slade), config.clone());
    let cold = first.decompile_batch(&refs);
    let snap = first.metrics();
    assert_eq!(snap.cache.spill_writes, asms.len() as u64, "every decode spilled");
    assert!(snap.decode_tokens > 0);
    first.shutdown(); // the "kill": drop the process state, keep the disk

    let second = ServeRuntime::start(Arc::clone(slade), config);
    let warm = second.decompile_batch(&refs);
    assert_eq!(warm, cold, "spill tier must return exactly what decode returned");
    let snap = second.metrics();
    assert_eq!(snap.decode_tokens, 0, "warm start must not decode at all");
    assert_eq!(snap.cache.hits, asms.len() as u64);
    assert_eq!(snap.cache.spill_hits, asms.len() as u64, "all hits came from disk");
    assert_eq!(snap.decoded, 0);
    second.shutdown();
}

#[test]
fn sustained_load_admits_in_arrival_order_without_starvation() {
    let (slade, asms) = fixture();
    // One shard, budget for exactly one request at a time: every queued
    // request competes for the same lanes, the starvation-prone shape.
    let config = ServeConfig {
        shards: 1,
        lanes_per_shard: slade.beam(),
        cache_capacity: 0,
        max_wait: Duration::from_millis(1),
        // Coalescing off: duplicates must each occupy a queue slot for
        // the admission-order assertion to see all 24 arrivals.
        coalesce: false,
        ..ServeConfig::default()
    };
    let runtime = ServeRuntime::start(Arc::clone(slade), config);
    let total = 24usize;
    let handles: Vec<slade_serve::RequestHandle> =
        (0..total).map(|i| runtime.submit(&asms[i % asms.len()])).collect();
    for handle in handles {
        assert!(!handle.wait().expect("no timeout configured").is_empty() || slade.beam() == 0);
    }
    let order = runtime.admission_order();
    assert_eq!(order.len(), total, "every request admitted exactly once");
    let sorted: Vec<u64> = (0..total as u64).collect();
    assert_eq!(order, sorted, "admission must follow arrival (no starvation)");
    runtime.shutdown();
}

#[test]
fn admission_order_is_globally_fifo_across_shards() {
    let (slade, asms) = fixture();
    let runtime = ServeRuntime::start(
        Arc::clone(slade),
        ServeConfig {
            shards: 3,
            lanes_per_shard: slade.beam(),
            cache_capacity: 0,
            max_wait: Duration::from_millis(1),
            coalesce: false,
            ..ServeConfig::default()
        },
    );
    let handles: Vec<slade_serve::RequestHandle> =
        (0..18).map(|i| runtime.submit(&asms[i % asms.len()])).collect();
    for handle in handles {
        handle.wait().expect("no timeout configured");
    }
    let order = runtime.admission_order();
    assert_eq!(order.len(), 18);
    for pair in order.windows(2) {
        assert!(pair[0] < pair[1], "pop order regressed: {order:?}");
    }
    runtime.shutdown();
}

#[test]
fn warm_cache_hits_skip_decode_and_metrics_account_for_it() {
    let (slade, asms) = fixture();
    let runtime = ServeRuntime::start(Arc::clone(slade), ServeConfig::with_shards(2));
    let refs: Vec<&str> = asms.iter().map(String::as_str).collect();
    let cold = runtime.decompile_batch(&refs);
    let warm = runtime.decompile_batch(&refs);
    assert_eq!(cold, warm, "cache must return exactly what decode returned");
    let snap = runtime.metrics();
    assert_eq!(snap.cache.misses, asms.len() as u64, "first pass all misses");
    assert_eq!(snap.cache.hits, asms.len() as u64, "second pass all hits");
    assert_eq!(snap.cache.entries, asms.len());
    assert!(snap.cache.hit_rate() > 0.49 && snap.cache.hit_rate() < 0.51);
    assert_eq!(snap.completed, 2 * asms.len() as u64);
    assert_eq!(snap.queue_depth, 0, "drained runtime has an empty queue");
    assert!(snap.p95_latency_ms >= snap.p50_latency_ms);
    // Raw-text and pre-normalized submission hit the same cache line.
    let normed = slade::normalize_asm(&asms[0]);
    let via_norm = runtime.decompile_batch_normalized(&[&normed]);
    assert_eq!(via_norm[0], cold[0]);
    assert_eq!(runtime.metrics().cache.hits, asms.len() as u64 + 1);
    runtime.shutdown();
}

#[test]
fn int8_backend_serves_identically_to_sequential_decode() {
    // The runtime ≡ sequential contract must hold per backend: flip the
    // fixture model to int8 weights and re-check, and make sure the
    // metrics surface reports the dispatch it actually runs with.
    let (slade, asms) = fixture();
    let mut quantized = (**slade).clone();
    quantized.set_backend(slade::Backend::Int8);
    let quantized = Arc::new(quantized);
    let refs: Vec<&str> = asms.iter().map(String::as_str).collect();
    let expected = quantized.decompile_batch(&refs);
    let runtime = ServeRuntime::start(
        Arc::clone(&quantized),
        ServeConfig::with_shards(2).without_cache(),
    );
    let served = runtime.decompile_batch(&refs);
    assert_eq!(served, expected, "int8 runtime diverged from sequential int8 decode");
    let snap = runtime.metrics();
    assert_eq!(snap.backend, "int8");
    assert!(
        ["scalar", "avx2", "neon", "vnni"].contains(&snap.kernel_isa),
        "unexpected tier {}",
        snap.kernel_isa
    );
    assert!(snap.decode_tokens > 0, "serving decoded tokens must be counted");
    runtime.shutdown();

    // The f32 runtime reports its backend too (decode already covered by
    // the headline property test).
    let f32_runtime = ServeRuntime::start(Arc::clone(slade), ServeConfig::with_shards(1));
    assert_eq!(f32_runtime.metrics().backend, "f32");
    f32_runtime.shutdown();
}

#[test]
fn batch_of_one_matches_direct_engine_call() {
    let (slade, asms) = fixture();
    let runtime =
        ServeRuntime::start(Arc::clone(slade), ServeConfig::with_shards(1).without_cache());
    for asm in asms.iter().take(3) {
        assert_eq!(runtime.decompile(asm), slade.decompile(asm));
    }
    runtime.shutdown();
}
