//! SLaDe: the Small Language model Decompiler (CGO 2024) — core pipeline.
//!
//! This crate implements the paper's contribution proper: a
//! sequence-to-sequence Transformer trained on (assembly, C) function pairs
//! with the UnigramLM code tokenizer, decoded with beam search (k = 5), and
//! augmented with PsycheC-style type inference so hypotheses referencing
//! out-of-context types still compile. Candidate selection ("the first
//! hypothesis passing the IO tests") lives in `slade-eval`, which owns the
//! execution harness.
//!
//! # Example
//!
//! ```no_run
//! use slade::{SladeBuilder, TrainProfile};
//! use slade_compiler::{Isa, OptLevel};
//! use slade_dataset::{generate_train, DatasetProfile};
//!
//! let items = generate_train(DatasetProfile::tiny(), 0);
//! let slade = SladeBuilder::new(Isa::X86_64, OptLevel::O0)
//!     .profile(TrainProfile::tiny())
//!     .train(&items, 0);
//! let candidates = slade.decompile("f:\n\tret\n");
//! assert!(candidates.len() <= 5);
//! ```

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use slade_compiler::{compile_function, CompileOpts, Isa, OptLevel};
use slade_dataset::DatasetItem;
use slade_minic::parse_program;
use slade_nn::{DecodeRequest, InferenceEngine, Seq2Seq, TransformerConfig};
use slade_tokenizer::{special, TokenizerOptions, UnigramTokenizer};

pub use slade_nn::Backend;

/// Training-scale knobs (see DESIGN.md §6 for the scaling argument).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainProfile {
    /// Transformer width.
    pub d_model: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// FFN width.
    pub d_ff: usize,
    /// Encoder/decoder layers (each).
    pub layers: usize,
    /// Tokenizer vocabulary target.
    pub vocab: usize,
    /// Maximum source (assembly) length in tokens; longer pairs are skipped
    /// during training — matching ExeBench's short-function bias (Fig. 9).
    pub max_src_len: usize,
    /// Maximum target (C) length in tokens.
    pub max_tgt_len: usize,
    /// Passes over the training pairs.
    pub epochs: usize,
    /// AdamW learning rate.
    pub lr: f32,
    /// Decoupled weight decay (the paper's only regularizer — no dropout).
    pub weight_decay: f32,
    /// Gradient-accumulation batch size.
    pub batch: usize,
    /// Train-time dropout probability. The paper's recipe is `0.0`
    /// ("dropout-free regularization", §I/§V-C); nonzero values exist for
    /// the ablation reproducing that preliminary experiment.
    #[serde(default)]
    pub dropout: f32,
    /// Epochs of BART-style denoising pre-training over the raw corpus
    /// before seq2seq fine-tuning (`0` = the paper's recipe; §X lists
    /// pre-training as future work).
    #[serde(default)]
    pub pretrain_epochs: usize,
    /// Pre-tokenization rules (§IV); defaults to the paper's recipe.
    #[serde(default)]
    pub tokenizer: TokenizerOptions,
}

impl TrainProfile {
    /// Unit-test scale (seconds).
    pub fn tiny() -> Self {
        TrainProfile {
            d_model: 32,
            n_heads: 2,
            d_ff: 64,
            layers: 1,
            vocab: 300,
            max_src_len: 96,
            max_tgt_len: 64,
            epochs: 2,
            lr: 3e-3,
            weight_decay: 0.01,
            batch: 4,
            dropout: 0.0,
            pretrain_epochs: 0,
            tokenizer: TokenizerOptions::default(),
        }
    }

    /// Default reproduction scale (tens of minutes per ISA×opt
    /// configuration on one core). The 1024-token source cap is the
    /// paper's own sequence limit (§III); `corpus_stats` shows the
    /// generated `-O0` assembly distribution fitting under it.
    pub fn default_profile() -> Self {
        TrainProfile {
            d_model: 64,
            n_heads: 4,
            d_ff: 128,
            layers: 2,
            vocab: 700,
            max_src_len: 1024,
            max_tgt_len: 128,
            epochs: 3,
            lr: 2e-3,
            weight_decay: 0.01,
            batch: 8,
            dropout: 0.0,
            pretrain_epochs: 0,
            tokenizer: TokenizerOptions::default(),
        }
    }
}

/// Builder configuring a SLaDe training run for one ISA × optimization
/// level (the paper trains one model per configuration, §V-C).
#[derive(Debug, Clone)]
pub struct SladeBuilder {
    isa: Isa,
    opt: OptLevel,
    profile: TrainProfile,
    beam: usize,
    max_batch_lanes: usize,
    backend: Backend,
}

impl SladeBuilder {
    /// Starts a builder for the given target configuration.
    pub fn new(isa: Isa, opt: OptLevel) -> Self {
        SladeBuilder {
            isa,
            opt,
            profile: TrainProfile::default_profile(),
            beam: 5,
            max_batch_lanes: Slade::MAX_BATCH_LANES,
            backend: Backend::F32,
        }
    }

    /// Sets the scale profile.
    pub fn profile(mut self, profile: TrainProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the beam width (paper: 5).
    pub fn beam(mut self, beam: usize) -> Self {
        self.beam = beam;
        self
    }

    /// Sets the concurrent-lane budget of one [`Slade::decompile_batch`]
    /// engine batch (clamped to ≥ 1; default [`Slade::MAX_BATCH_LANES`]).
    /// The budget caps the decoder's up-front KV-arena allocation; serving
    /// layers that shard requests across workers size it to per-shard
    /// capacity instead of the single-process default.
    pub fn max_batch_lanes(mut self, lanes: usize) -> Self {
        self.max_batch_lanes = lanes.max(1);
        self
    }

    /// Sets the inference weight backend ([`Backend::F32`] default, or
    /// [`Backend::Int8`] for per-row-quantized projection weights).
    /// Training always runs in f32; the backend only changes how the
    /// batched decode/encode paths materialize their weights.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Compiles the items, trains the tokenizer and the model, and returns
    /// the ready decompiler. Items that fail to compile or exceed the
    /// length caps are skipped.
    pub fn train(self, items: &[DatasetItem], seed: u64) -> Slade {
        let pairs = make_pairs(items, self.isa, self.opt);
        let mut corpus: Vec<String> = Vec::new();
        for (asm, c) in &pairs {
            corpus.push(normalize_asm(asm));
            corpus.push(c.clone());
        }
        let tokenizer =
            UnigramTokenizer::train_with(&corpus, self.profile.vocab, self.profile.tokenizer);
        let cfg = TransformerConfig {
            vocab: tokenizer.vocab_size(),
            d_model: self.profile.d_model,
            n_heads: self.profile.n_heads,
            d_ff: self.profile.d_ff,
            enc_layers: self.profile.layers,
            dec_layers: self.profile.layers,
            max_len: self.profile.max_src_len.max(self.profile.max_tgt_len) + 2,
            backend: self.backend,
        };
        let mut model = Seq2Seq::new(cfg, seed);
        if self.profile.dropout > 0.0 {
            model.set_dropout(self.profile.dropout, seed ^ 0xd50);
        }
        if self.profile.pretrain_epochs > 0 {
            pretrain_denoising(&mut model, &tokenizer, &corpus, &self.profile, seed ^ 0xba51);
        }
        // Tokenize and filter by length.
        let mut encoded: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
        for (asm, c) in &pairs {
            let src = tokenizer.encode(&normalize_asm(asm));
            let tgt = tokenizer.encode(c);
            if src.len() <= self.profile.max_src_len
                && tgt.len() < self.profile.max_tgt_len
                && !src.is_empty()
                && !tgt.is_empty()
            {
                encoded.push((src, tgt));
            }
        }
        // Teacher-forced training with gradient accumulation.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x51ade);
        let mut order: Vec<usize> = (0..encoded.len()).collect();
        for _epoch in 0..self.profile.epochs {
            order.shuffle(&mut rng);
            let mut in_batch = 0usize;
            model.zero_grads();
            for &i in &order {
                let (src, tgt) = &encoded[i];
                let mut dec_input = vec![special::BOS];
                dec_input.extend_from_slice(tgt);
                let mut labels = tgt.clone();
                labels.push(special::EOS);
                let _ = model.train_pair(src, &dec_input, &labels);
                in_batch += 1;
                if in_batch == self.profile.batch {
                    model.adam_step(
                        self.profile.lr,
                        self.profile.weight_decay,
                        1.0 / in_batch as f32,
                    );
                    model.zero_grads();
                    in_batch = 0;
                }
            }
            if in_batch > 0 {
                model.adam_step(
                    self.profile.lr,
                    self.profile.weight_decay,
                    1.0 / in_batch as f32,
                );
                model.zero_grads();
            }
        }
        Slade {
            model,
            tokenizer,
            beam: self.beam,
            max_tgt_len: self.profile.max_tgt_len,
            isa: self.isa,
            opt: self.opt,
            max_batch_lanes: Some(self.max_batch_lanes),
        }
    }
}

/// Compiles every item for `(isa, opt)` into `(assembly, c_source)` pairs.
pub fn make_pairs(items: &[DatasetItem], isa: Isa, opt: OptLevel) -> Vec<(String, String)> {
    let opts = CompileOpts::new(isa, opt);
    items
        .iter()
        .filter_map(|item| {
            let program = parse_program(&item.full_src()).ok()?;
            let asm = compile_function(&program, &item.name, opts).ok()?;
            Some((asm, item.func_src.clone()))
        })
        .collect()
}

/// Strips assembler lines that carry no decompilation signal before
/// tokenization: CFI bookkeeping, alignment hints, section/linkage
/// directives. Labels, instructions and data definitions (jump-table and
/// rodata contents) are kept. The digit-by-digit tokenizer makes such
/// boilerplate expensive (a single `.cfi_def_cfa_offset 16` is ~10
/// tokens), and at reproduction scale the sequence budget is the binding
/// constraint — this is the model-input normalization half of the paper's
/// "assembly without its surrounding context" setup. Applied identically
/// at training and inference ([`Slade::decompile`]); the rule-based tools
/// and emulators always see the raw text.
pub fn normalize_asm(asm: &str) -> String {
    const DROP_PREFIXES: [&str; 9] = [
        ".cfi_", ".p2align", ".align", ".text", ".globl", ".global", ".type", ".size", ".ident",
    ];
    let mut out = String::with_capacity(asm.len());
    for line in asm.lines() {
        let t = line.trim();
        if t.is_empty() || DROP_PREFIXES.iter().any(|p| t.starts_with(p)) {
            continue;
        }
        out.push_str(t);
        out.push('\n');
    }
    out
}

/// BART-style span corruption for denoising pre-training: each position
/// starts a masked span with probability ~0.15; a span covers one to four
/// original tokens and is replaced by a single [`special::MASK`]. Roughly
/// 30% of tokens end up hidden, matching BART's text-infilling noise rate.
///
/// Never returns an empty sequence (a fully-masked input degenerates to a
/// single mask token).
pub fn corrupt_spans(ids: &[u32], rng: &mut rand_chacha::ChaCha8Rng) -> Vec<u32> {
    use rand::Rng;
    let mut out = Vec::with_capacity(ids.len());
    let mut i = 0usize;
    while i < ids.len() {
        if rng.gen::<f32>() < 0.15 {
            let span = rng.gen_range(1..=4usize);
            out.push(special::MASK);
            i += span;
        } else {
            out.push(ids[i]);
            i += 1;
        }
    }
    if out.is_empty() {
        out.push(special::MASK);
    }
    out
}

/// Denoising pre-training over the raw (assembly + C) corpus: the model
/// reconstructs the original token sequence from a span-corrupted copy.
/// This is the paper's §X "pre-training" future-work direction; the
/// ablation suite measures its effect at reproduction scale.
fn pretrain_denoising(
    model: &mut Seq2Seq,
    tokenizer: &UnigramTokenizer,
    corpus: &[String],
    profile: &TrainProfile,
    seed: u64,
) {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let cap = profile.max_src_len.min(profile.max_tgt_len).saturating_sub(1).max(8);
    let texts: Vec<Vec<u32>> = corpus
        .iter()
        .map(|t| {
            let mut ids = tokenizer.encode(t);
            ids.truncate(cap);
            ids
        })
        .filter(|ids| !ids.is_empty())
        .collect();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..texts.len()).collect();
    for _epoch in 0..profile.pretrain_epochs {
        order.shuffle(&mut rng);
        let mut in_batch = 0usize;
        model.zero_grads();
        for &i in &order {
            let original = &texts[i];
            // Fresh corruption every epoch, as in BART.
            let corrupted = corrupt_spans(original, &mut rng);
            let mut dec_input = vec![special::BOS];
            dec_input.extend_from_slice(original);
            let mut labels = original.clone();
            labels.push(special::EOS);
            let _ = model.train_pair(&corrupted, &dec_input, &labels);
            in_batch += 1;
            if in_batch == profile.batch {
                model.adam_step(profile.lr, profile.weight_decay, 1.0 / in_batch as f32);
                model.zero_grads();
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            model.adam_step(profile.lr, profile.weight_decay, 1.0 / in_batch as f32);
            model.zero_grads();
        }
    }
}

/// A trained SLaDe decompiler for one ISA × optimization level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Slade {
    /// The seq2seq model.
    pub model: Seq2Seq,
    /// The subword tokenizer.
    pub tokenizer: UnigramTokenizer,
    beam: usize,
    max_tgt_len: usize,
    /// Target ISA this model was trained for. Artifacts saved before the
    /// target was recorded deserialize to the x86-64 default.
    #[serde(default)]
    isa: Isa,
    /// Optimization level this model was trained for (`O0` default for
    /// pre-recording artifacts).
    #[serde(default)]
    opt: OptLevel,
    /// Configured lane budget; `None` (pre-knob artifacts) means
    /// [`Slade::MAX_BATCH_LANES`].
    #[serde(default)]
    max_batch_lanes: Option<usize>,
}

impl Slade {
    /// Upper bound on concurrent beam lanes per engine batch inside
    /// [`Slade::decompile_batch`]: caps the engine's up-front KV-arena
    /// allocation (which scales with `lanes × max_tgt_len × d_model`)
    /// regardless of corpus size.
    pub const MAX_BATCH_LANES: usize = 256;

    /// Assembles a decompiler from pre-built parts — the entry point for
    /// benchmarks and serving tests that need a `Slade` around a model
    /// that was not produced by [`SladeBuilder::train`] (e.g. an untrained
    /// model whose decode cost is still representative).
    pub fn from_parts(
        model: Seq2Seq,
        tokenizer: UnigramTokenizer,
        isa: Isa,
        opt: OptLevel,
        beam: usize,
        max_tgt_len: usize,
    ) -> Self {
        Slade {
            model,
            tokenizer,
            beam: beam.max(1),
            max_tgt_len: max_tgt_len.max(1),
            isa,
            opt,
            max_batch_lanes: None,
        }
    }

    /// The configured beam width.
    pub fn beam(&self) -> usize {
        self.beam
    }

    /// The maximum hypothesis length in tokens (decode budget per lane).
    pub fn max_tgt_len(&self) -> usize {
        self.max_tgt_len
    }

    /// The ISA this model was trained for.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// The optimization level this model was trained for.
    pub fn opt(&self) -> OptLevel {
        self.opt
    }

    /// The inference weight backend the model decodes with.
    pub fn backend(&self) -> Backend {
        self.model.cfg.backend
    }

    /// Switches the inference weight backend in place. Cheap: weights are
    /// (re-)materialized per decode/encode pass, so flipping the backend
    /// on a trained model takes effect on the next call — the eval-accuracy
    /// gate compares f32 and int8 on the same trained weights this way.
    pub fn set_backend(&mut self, backend: Backend) {
        self.model.cfg.backend = backend;
    }

    /// The effective concurrent-lane budget per engine batch
    /// ([`SladeBuilder::max_batch_lanes`], default
    /// [`Slade::MAX_BATCH_LANES`]).
    pub fn max_batch_lanes(&self) -> usize {
        self.max_batch_lanes.unwrap_or(Self::MAX_BATCH_LANES).max(1)
    }

    /// Reconfigures the lane budget after training (serving layers size it
    /// to shard capacity).
    pub fn set_max_batch_lanes(&mut self, lanes: usize) {
        self.max_batch_lanes = Some(lanes.max(1));
    }

    /// Changes the beam width after training (the beam-width ablation
    /// re-decodes one trained model at several `k`).
    pub fn set_beam(&mut self, beam: usize) {
        self.beam = beam.max(1);
    }

    /// Decompiles assembly text into up to `beam` C hypotheses, best first
    /// (§VI-A). Candidate selection by IO testing is the harness's job.
    pub fn decompile(&self, asm_text: &str) -> Vec<String> {
        self.decompile_batch(&[asm_text]).pop().unwrap_or_default()
    }

    /// Decompiles a batch of functions through the inference engine:
    /// sources are encoded together and every live beam hypothesis of
    /// every function shares each decode step's projection matmuls
    /// ([`slade_nn::InferenceEngine::decode_batch`]). This is the serving
    /// entry point — corpus evaluation and the beam ablation route
    /// through it — and returns, per input, up to `beam` hypotheses, best
    /// first.
    ///
    /// The engine pre-allocates KV arenas for every beam lane of every
    /// request in a batch, so an unbounded corpus would mean unbounded
    /// memory; inputs are therefore fed through in chunks of at most
    /// [`Slade::max_batch_lanes`] concurrent lanes (batching benefits
    /// saturate far below the default budget).
    pub fn decompile_batch(&self, asm_texts: &[&str]) -> Vec<Vec<String>> {
        let normalized: Vec<String> = asm_texts.iter().map(|asm| normalize_asm(asm)).collect();
        let refs: Vec<&str> = normalized.iter().map(String::as_str).collect();
        self.decompile_batch_normalized(&refs)
    }

    /// [`Slade::decompile_batch`] over inputs that are **already**
    /// [`normalize_asm`] output — the entry point for callers (the eval
    /// harness, the serving runtime's cache) that normalize once up front
    /// so the cache key and the tokenizer input are provably the same
    /// string. Inputs are not re-normalized; passing raw assembly here
    /// tokenizes its boilerplate.
    pub fn decompile_batch_normalized(&self, normalized_asm: &[&str]) -> Vec<Vec<String>> {
        let beam = self.beam.max(1);
        let per_chunk = (self.max_batch_lanes() / beam).max(1);
        let engine = InferenceEngine::new(&self.model);
        let mut out = Vec::with_capacity(normalized_asm.len());
        for chunk in normalized_asm.chunks(per_chunk) {
            let tok_timer = slade_obs::StageTimer::start(slade_obs::StageHist::Tokenize);
            let requests: Vec<DecodeRequest> = chunk
                .iter()
                .map(|asm| DecodeRequest {
                    src: self.tokenizer.encode(asm),
                    bos: special::BOS,
                    eos: special::EOS,
                    max_len: self.max_tgt_len,
                    beam: self.beam,
                })
                .collect();
            drop(tok_timer);
            out.extend(engine.decode_batch(&requests).into_iter().map(|beams| {
                beams
                    .into_iter()
                    .map(|ids| self.tokenizer.decode(&ids))
                    .collect::<Vec<String>>()
            }));
        }
        out
    }

    /// Decompiles and appends the type-inference header when the raw
    /// hypothesis does not compile in `context` (§VI-B). Returns
    /// `(hypothesis, header)` pairs.
    pub fn decompile_with_types(&self, asm_text: &str, context: &str) -> Vec<(String, String)> {
        self.decompile_batch_with_types(&[asm_text], &[context]).pop().unwrap_or_default()
    }

    /// Batched [`Slade::decompile_with_types`]: one engine pass over all
    /// functions, then per-hypothesis type inference against each
    /// function's own context. `contexts` must be parallel to `asm_texts`.
    ///
    /// # Panics
    ///
    /// Panics when `asm_texts` and `contexts` lengths differ.
    pub fn decompile_batch_with_types(
        &self,
        asm_texts: &[&str],
        contexts: &[&str],
    ) -> Vec<Vec<(String, String)>> {
        assert_eq!(asm_texts.len(), contexts.len(), "one context per function");
        self.decompile_batch(asm_texts)
            .into_iter()
            .zip(contexts)
            .map(|(hyps, context)| {
                hyps.into_iter()
                    .map(|hyp| {
                        let header = slade_typeinf::infer_missing_types(&hyp, context)
                            .unwrap_or_default();
                        (hyp, header)
                    })
                    .collect()
            })
            .collect()
    }

    /// Serializes the trained decompiler (model + tokenizer) to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("slade serialization")
    }

    /// Loads a decompiler saved with [`Slade::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slade_dataset::{generate_train, DatasetProfile};

    #[test]
    fn make_pairs_compiles_items() {
        let items = generate_train(DatasetProfile::tiny(), 3);
        let pairs = make_pairs(&items, Isa::X86_64, OptLevel::O0);
        assert!(!pairs.is_empty());
        assert!(pairs[0].0.contains("ret"));
        assert!(pairs[0].1.contains("("));
    }

    #[test]
    fn tiny_training_runs_and_decodes() {
        let items = generate_train(DatasetProfile::tiny(), 5);
        let slade = SladeBuilder::new(Isa::X86_64, OptLevel::O0)
            .profile(TrainProfile::tiny())
            .beam(2)
            .train(&items, 1);
        let pairs = make_pairs(&items[..4.min(items.len())], Isa::X86_64, OptLevel::O0);
        let out = slade.decompile(&pairs[0].0);
        assert!(!out.is_empty());
        // Output is text; we don't require correctness at tiny scale.
        assert!(out[0].len() < 4000);
    }

    #[test]
    fn decompile_batch_matches_per_item_decompile() {
        let items = generate_train(DatasetProfile::tiny(), 6);
        let slade = SladeBuilder::new(Isa::X86_64, OptLevel::O0)
            .profile(TrainProfile::tiny())
            .beam(3)
            .train(&items, 7);
        let pairs = make_pairs(&items[..6.min(items.len())], Isa::X86_64, OptLevel::O0);
        let asms: Vec<&str> = pairs.iter().take(4).map(|(a, _)| a.as_str()).collect();
        let batched = slade.decompile_batch(&asms);
        assert_eq!(batched.len(), asms.len());
        for (asm, got) in asms.iter().zip(&batched) {
            assert_eq!(got, &slade.decompile(asm), "batch/TPI divergence");
        }
        // The typed variant stays parallel to its inputs.
        let contexts: Vec<&str> = asms.iter().map(|_| "").collect();
        let typed = slade.decompile_batch_with_types(&asms, &contexts);
        assert_eq!(typed.len(), asms.len());
        for (raw, with_types) in batched.iter().zip(&typed) {
            assert_eq!(raw.len(), with_types.len());
            for (h, (h2, _header)) in raw.iter().zip(with_types) {
                assert_eq!(h, h2);
            }
        }
    }

    #[test]
    fn lane_budget_knob_changes_chunking_not_results() {
        let items = generate_train(DatasetProfile::tiny(), 11);
        let slade = SladeBuilder::new(Isa::Arm64, OptLevel::O0)
            .profile(TrainProfile::tiny())
            .beam(3)
            .max_batch_lanes(3) // one request per engine chunk
            .train(&items, 5);
        assert_eq!(slade.max_batch_lanes(), 3);
        assert_eq!(slade.isa(), Isa::Arm64);
        assert_eq!(slade.opt(), OptLevel::O0);
        let pairs = make_pairs(&items[..5.min(items.len())], Isa::Arm64, OptLevel::O0);
        let asms: Vec<&str> = pairs.iter().take(4).map(|(a, _)| a.as_str()).collect();
        let tight = slade.decompile_batch(&asms);
        let mut wide = slade.clone();
        wide.set_max_batch_lanes(Slade::MAX_BATCH_LANES);
        assert_eq!(tight, wide.decompile_batch(&asms), "chunking must not change results");
        // Pre-normalized entry point agrees with the raw one.
        let normed: Vec<String> = asms.iter().map(|a| normalize_asm(a)).collect();
        let normed_refs: Vec<&str> = normed.iter().map(String::as_str).collect();
        assert_eq!(tight, slade.decompile_batch_normalized(&normed_refs));
    }

    #[test]
    fn pre_knob_artifacts_deserialize_with_defaults() {
        let items = generate_train(DatasetProfile::tiny(), 9);
        let slade = SladeBuilder::new(Isa::X86_64, OptLevel::O0)
            .profile(TrainProfile::tiny())
            .beam(1)
            .train(&items[..6.min(items.len())], 8);
        // Strip the fields a pre-knob artifact would not carry.
        let json = slade
            .to_json()
            .replace("\"isa\":\"X86_64\",", "")
            .replace("\"opt\":\"O0\",", "")
            .replace("\"max_batch_lanes\":256,", "")
            .replace(",\"max_batch_lanes\":256", "");
        assert!(!json.contains("max_batch_lanes"), "field not stripped: {json:.120}");
        let back = Slade::from_json(&json).unwrap();
        assert_eq!(back.isa(), Isa::X86_64);
        assert_eq!(back.opt(), OptLevel::O0);
        assert_eq!(back.max_batch_lanes(), Slade::MAX_BATCH_LANES);
        let asm = "f:\n\tret\n";
        assert_eq!(slade.decompile(asm), back.decompile(asm));
    }

    #[test]
    fn serde_roundtrip() {
        let items = generate_train(DatasetProfile::tiny(), 9);
        let slade = SladeBuilder::new(Isa::X86_64, OptLevel::O0)
            .profile(TrainProfile::tiny())
            .beam(1)
            .train(&items[..10.min(items.len())], 2);
        let json = slade.to_json();
        let back = Slade::from_json(&json).unwrap();
        let asm = "f:\n\tmovl %edi, %eax\n\tret\n";
        assert_eq!(slade.decompile(asm), back.decompile(asm));
    }

    #[test]
    fn corrupt_spans_masks_some_tokens_and_never_empties() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let ids: Vec<u32> = (10..200).collect();
        let corrupted = corrupt_spans(&ids, &mut rng);
        assert!(corrupted.len() < ids.len(), "spans must shorten the sequence");
        assert!(corrupted.contains(&special::MASK));
        // Unmasked tokens keep their relative order.
        let kept: Vec<u32> =
            corrupted.iter().copied().filter(|&t| t != special::MASK).collect();
        let mut last = 0u32;
        for t in kept {
            assert!(t > last, "order violated");
            last = t;
        }
        // Degenerate input.
        let tiny = corrupt_spans(&[], &mut rng);
        assert_eq!(tiny, vec![special::MASK]);
    }

    #[test]
    fn training_with_pretraining_and_dropout_runs() {
        let items = generate_train(DatasetProfile::tiny(), 5);
        let mut profile = TrainProfile::tiny();
        profile.epochs = 1;
        profile.pretrain_epochs = 1;
        profile.dropout = 0.1;
        let slade = SladeBuilder::new(Isa::X86_64, OptLevel::O0)
            .profile(profile)
            .beam(1)
            .train(&items[..8.min(items.len())], 3);
        let out = slade.decompile("f:\n\tret\n");
        assert!(!out.is_empty());
    }

    #[test]
    fn tokenizer_options_flow_through_training() {
        let items = generate_train(DatasetProfile::tiny(), 5);
        let mut profile = TrainProfile::tiny();
        profile.epochs = 1;
        profile.tokenizer = TokenizerOptions { digit_split: false, punct_split: true };
        let slade = SladeBuilder::new(Isa::X86_64, OptLevel::O0)
            .profile(profile)
            .beam(1)
            .train(&items[..6.min(items.len())], 4);
        assert_eq!(slade.tokenizer.options(), profile.tokenizer);
    }

    #[test]
    fn old_profiles_deserialize_with_paper_defaults() {
        // A profile serialized before the ablation knobs existed.
        let json = r#"{"d_model":32,"n_heads":2,"d_ff":64,"layers":1,"vocab":300,
            "max_src_len":96,"max_tgt_len":64,"epochs":2,"lr":0.003,
            "weight_decay":0.01,"batch":4}"#;
        let p: TrainProfile = serde_json::from_str(json).unwrap();
        assert_eq!(p.dropout, 0.0);
        assert_eq!(p.pretrain_epochs, 0);
        assert_eq!(p.tokenizer, TokenizerOptions::default());
    }
}
