//! Property tests for the kernel layer's bit-identity contract
//! (satellite of the SIMD dispatch work; see `kernels` module docs).
//!
//! SIMD tiers are compared against the scalar reference by calling the
//! per-tier entry points directly (`scalar::` vs `avx2::`), not via
//! [`slade_nn::kernels::set_tier`] — the dispatch override is
//! process-global and these tests run on the harness's parallel threads.
//! Shapes deliberately cover the awkward cases: `k` not a multiple of
//! the 8-lane width (tail path), `m = 1` / `n = 1` (degenerate tiles),
//! and `n` not a multiple of 8 (xposed column tail).
//!
//! One `proptest!` block per test: the vendored macro expands a long
//! recursive muncher and a combined block overflows the recursion limit.

use proptest::prelude::*;
use slade_nn::kernels::{self, scalar};

fn mat(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-4.0f32..4.0, len)
}

#[cfg(target_arch = "x86_64")]
fn has_avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// Deterministic pseudo-random matrix (splitmix-style; no rand dep so
/// shapes shrink reproducibly).
fn seeded(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

/// Rows of `seeded` data quantized per row — inputs for the int8 kernels.
#[cfg(target_arch = "x86_64")]
fn quantized(seed: u64, rows: usize, cols: usize) -> (Vec<i8>, Vec<f32>) {
    let data = seeded(seed, rows * cols);
    let mut q = vec![0i8; rows * cols];
    let mut scales = vec![0.0f32; rows];
    for r in 0..rows {
        scales[r] = kernels::quantize_row_i8(
            &data[r * cols..(r + 1) * cols],
            &mut q[r * cols..(r + 1) * cols],
        );
    }
    (q, scales)
}

#[cfg(target_arch = "x86_64")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn avx2_transb_is_bit_identical_to_scalar(
        m in 1usize..5,
        k in 1usize..40,
        n in 1usize..20,
        seed in 0u64..1_000,
    ) {
        if !has_avx2() {
            return Ok(());
        }
        let a = seeded(seed, m * k);
        let b = seeded(seed ^ 0xb, n * k);
        let mut cs = vec![0.0f32; m * n];
        let mut cv = vec![0.0f32; m * n];
        scalar::matmul_transb_into(&a, &b, &mut cs, m, k, n);
        kernels::avx2::matmul_transb_into(&a, &b, &mut cv, m, k, n);
        for (s, v) in cs.iter().zip(&cv) {
            prop_assert_eq!(s.to_bits(), v.to_bits(), "shape ({},{},{})", m, k, n);
        }
    }
}

#[cfg(target_arch = "x86_64")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn avx2_xposed_is_bit_identical_to_scalar(
        m in 1usize..5,
        k in 1usize..40,
        n in 1usize..20,
        seed in 0u64..1_000,
    ) {
        if !has_avx2() {
            return Ok(());
        }
        let a = seeded(seed, m * k);
        let bt = seeded(seed ^ 0xc, k * n);
        let mut cs = vec![0.0f32; m * n];
        let mut cv = vec![0.0f32; m * n];
        scalar::matmul_xposed_into(&a, &bt, &mut cs, m, k, n);
        kernels::avx2::matmul_xposed_into(&a, &bt, &mut cv, m, k, n);
        for (s, v) in cs.iter().zip(&cv) {
            prop_assert_eq!(s.to_bits(), v.to_bits(), "shape ({},{},{})", m, k, n);
        }
    }
}

#[cfg(target_arch = "x86_64")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn avx2_row_max_is_bit_identical_to_scalar(row in mat(57)) {
        if !has_avx2() {
            return Ok(());
        }
        for len in [1usize, 7, 8, 9, 31, 57] {
            let r = &row[..len];
            prop_assert_eq!(
                scalar::row_max(r).to_bits(),
                kernels::avx2::row_max(r).to_bits()
            );
        }
    }
}

#[cfg(target_arch = "x86_64")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn avx2_sum_exp_is_bit_identical_to_scalar(row in mat(57)) {
        if !has_avx2() {
            return Ok(());
        }
        for len in [1usize, 7, 8, 9, 31, 57] {
            let r = &row[..len];
            let max = scalar::row_max(r);
            prop_assert_eq!(
                scalar::sum_exp(r, max).to_bits(),
                kernels::avx2::sum_exp(r, max).to_bits()
            );
            // Widened operands reach the flush-to-zero branch (v - max
            // far below -87), which must also agree across tiers.
            let wide: Vec<f32> = r.iter().map(|v| v * 40.0).collect();
            let wmax = scalar::row_max(&wide);
            prop_assert_eq!(
                scalar::sum_exp(&wide, wmax).to_bits(),
                kernels::avx2::sum_exp(&wide, wmax).to_bits()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sum_exp_matches_libm_within_tolerance(row in mat(57)) {
        // The kernel's polynomial exp stays within a few ulps of libm,
        // so the summed normalizer agrees to ~1e-6 relative.
        let max = kernels::row_max(&row);
        let got = kernels::sum_exp(&row, max);
        let want: f32 = row.iter().map(|&v| (v - max).exp()).sum();
        prop_assert!(
            (got - want).abs() <= want * 1e-5 + 1e-6,
            "{} vs {}", got, want
        );
    }
}

#[cfg(target_arch = "x86_64")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn avx2_gelu_is_bit_identical_to_scalar(row in mat(57)) {
        if !has_avx2() {
            return Ok(());
        }
        for len in [1usize, 7, 8, 9, 31, 57] {
            // Scale some inputs far out so the tanh saturates (exp
            // flush-to-zero path) on both tiers.
            for scale in [1.0f32, 25.0] {
                let src: Vec<f32> = row[..len].iter().map(|v| v * scale).collect();
                let mut a = src.clone();
                let mut b = src;
                scalar::gelu_into(&mut a);
                kernels::avx2::gelu_into(&mut b);
                for (x, y) in a.iter().zip(&b) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gelu_matches_libm_tanh_within_tolerance(row in mat(57)) {
        // The polynomial-exp tanh stays within a few ulps of the libm
        // formulation the kernel replaced.
        let mut got = row.clone();
        kernels::gelu_into(&mut got);
        for (&x, &g) in row.iter().zip(&got) {
            let want = 0.5 * x * (1.0 + ((0.797_884_6f32) * (x + 0.044715 * x * x * x)).tanh());
            prop_assert!(
                (g - want).abs() <= want.abs() * 1e-5 + 1e-6,
                "x={}: {} vs {}", x, g, want
            );
        }
    }
}

#[cfg(target_arch = "x86_64")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn avx2_qmatmul_is_exactly_scalar(
        m in 1usize..5,
        k in 1usize..40,
        n in 1usize..20,
        seed in 0u64..1_000,
    ) {
        if !has_avx2() {
            return Ok(());
        }
        let (xq, xs) = quantized(seed, m, k);
        let (wq, ws) = quantized(seed ^ 0xd, n, k);
        let bias = seeded(seed ^ 0xe, n);
        let mut os = vec![0.0f32; m * n];
        let mut ov = vec![0.0f32; m * n];
        scalar::qmatmul_transb_into(&xq, &xs, &wq, &ws, Some(&bias), &mut os, m, k, n);
        kernels::avx2::qmatmul_transb_into(&xq, &xs, &wq, &ws, Some(&bias), &mut ov, m, k, n);
        // i32 accumulation is exact, so the tiers agree to the bit.
        for (s, v) in os.iter().zip(&ov) {
            prop_assert_eq!(s.to_bits(), v.to_bits(), "shape ({},{},{})", m, k, n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transb_and_xposed_agree_bitwise(
        m in 1usize..5,
        k in 1usize..40,
        n in 1usize..20,
        seed in 0u64..1_000,
    ) {
        // Cross-orientation identity: the scalar decode path projects via
        // transb, the batched path via a pre-transposed copy of the same
        // weights. Uses the dispatched entry points, so whichever tier is
        // active must uphold it.
        let a = seeded(seed, m * k);
        let w = seeded(seed ^ 0xf, n * k); // n x k
        let mut wt = vec![0.0f32; k * n];
        for r in 0..n {
            for p in 0..k {
                wt[p * n + r] = w[r * k + p];
            }
        }
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        kernels::matmul_transb_into(&a, &w, &mut c1, m, k, n);
        kernels::matmul_xposed_into(&a, &wt, &mut c2, m, k, n);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "shape ({},{},{})", m, k, n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batched_transb_matches_unbatched_loop(
        m in 1usize..5,
        k in 1usize..40,
        n in 1usize..20,
        batch in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let a = seeded(seed, batch * m * k);
        let b = seeded(seed ^ 0x10, batch * n * k);
        let mut cb = vec![0.0f32; batch * m * n];
        kernels::matmul_transb_batched(
            &a, m * k, &b, n * k, &mut cb, m * n, batch, m, k, n,
        );
        for bi in 0..batch {
            let mut c = vec![0.0f32; m * n];
            kernels::matmul_transb_into(
                &a[bi * m * k..(bi + 1) * m * k],
                &b[bi * n * k..(bi + 1) * n * k],
                &mut c,
                m, k, n,
            );
            for (x, y) in c.iter().zip(&cb[bi * m * n..(bi + 1) * m * n]) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantize_round_trip_error_is_half_a_step(row in mat(37)) {
        let mut q = vec![0i8; row.len()];
        let scale = kernels::quantize_row_i8(&row, &mut q);
        for (&v, &qv) in row.iter().zip(&q) {
            // Round-to-nearest: each value lands within half a
            // quantization step of its dequantized image.
            prop_assert!(
                (v - qv as f32 * scale).abs() <= scale * 0.5 + 1e-6,
                "{} vs {} (scale {})", v, qv as f32 * scale, scale
            );
        }
        let absmax = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        if absmax > 0.0 {
            // The largest-magnitude element saturates the int8 range.
            prop_assert!(q.iter().any(|&v| v.unsigned_abs() == 127));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qmatmul_error_vs_f32_is_bounded(
        m in 1usize..5,
        k in 1usize..40,
        n in 1usize..20,
        seed in 0u64..1_000,
    ) {
        // Quantize activations and weights per row, multiply in int8, and
        // compare against the f32 reference. Worst-case error per output:
        // each x error ≤ xs/2 against |w| ≤ 127·ws (and symmetrically),
        // plus the cross term — bounded by
        //   ws/2·Σ|x| + xs/2·Σ|w| + k·xs·ws/4,
        // with 1.5× slack for rounding of the bound arithmetic itself.
        let x = seeded(seed, m * k);
        let w = seeded(seed ^ 0x11, n * k);
        let mut xq = vec![0i8; m * k];
        let mut xs = vec![0.0f32; m];
        for i in 0..m {
            xs[i] = kernels::quantize_row_i8(
                &x[i * k..(i + 1) * k],
                &mut xq[i * k..(i + 1) * k],
            );
        }
        let mut wq = vec![0i8; n * k];
        let mut ws = vec![0.0f32; n];
        for j in 0..n {
            ws[j] = kernels::quantize_row_i8(
                &w[j * k..(j + 1) * k],
                &mut wq[j * k..(j + 1) * k],
            );
        }
        let mut qo = vec![0.0f32; m * n];
        kernels::qmatmul_transb_into(&xq, &xs, &wq, &ws, None, &mut qo, m, k, n);
        let mut fo = vec![0.0f32; m * n];
        kernels::matmul_transb_into(&x, &w, &mut fo, m, k, n);
        for i in 0..m {
            let sum_ax: f32 = x[i * k..(i + 1) * k].iter().map(|v| v.abs()).sum();
            for j in 0..n {
                let sum_aw: f32 = w[j * k..(j + 1) * k].iter().map(|v| v.abs()).sum();
                let bound = ws[j] * 0.5 * sum_ax
                    + xs[i] * 0.5 * sum_aw
                    + k as f32 * xs[i] * ws[j] * 0.25;
                let err = (qo[i * n + j] - fo[i * n + j]).abs();
                prop_assert!(
                    err <= bound * 1.5 + 1e-5,
                    "err {} > bound {} at ({},{}) shape ({},{},{})", err, bound, i, j, m, k, n
                );
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn avx2_quantize_is_bit_identical_to_scalar(row in mat(57), scale_exp in -3i32..4) {
        if !has_avx2() {
            return Ok(());
        }
        let scale = 2.0f32.powi(scale_exp);
        for len in [1usize, 7, 8, 9, 31, 57] {
            let src: Vec<f32> = row[..len].iter().map(|v| v * scale).collect();
            let mut qs = vec![0i8; len];
            let mut qv = vec![0i8; len];
            let ss = scalar::quantize_row_i8(&src, &mut qs);
            let sv = kernels::avx2::quantize_row_i8(&src, &mut qv);
            prop_assert_eq!(ss.to_bits(), sv.to_bits(), "scale, len {}", len);
            prop_assert_eq!(&qs, &qv, "codes, len {}", len);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[test]
fn avx2_quantize_edge_rows_match_scalar() {
    if !has_avx2() {
        return;
    }
    // Zero rows, denormal-absmax rows (inv = 127/absmax overflows to
    // +inf), mixed ±0.0, and an all-inf row: the vector tier must take
    // the same early-outs and produce the same codes as scalar.
    let denorm = f32::from_bits(1); // smallest positive subnormal
    let cases: Vec<Vec<f32>> = vec![
        vec![0.0; 13],
        vec![-0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0],
        vec![denorm; 9],
        vec![-denorm, denorm, 0.0, denorm, -denorm, 0.0, denorm, -denorm, denorm, 0.0],
        vec![f32::INFINITY, 1.0, -2.0, 0.5, -0.25, 3.0, -1.5, 0.75, 2.5],
        vec![f32::NEG_INFINITY; 8],
        vec![1e-38, -2e-38, 3e-38, -4e-38, 5e-38, -6e-38, 7e-38],
    ];
    for (i, src) in cases.iter().enumerate() {
        let mut qs = vec![0i8; src.len()];
        let mut qv = vec![0i8; src.len()];
        let ss = scalar::quantize_row_i8(src, &mut qs);
        let sv = kernels::avx2::quantize_row_i8(src, &mut qv);
        assert_eq!(ss.to_bits(), sv.to_bits(), "case {i} scale");
        assert_eq!(qs, qv, "case {i} codes");
    }
}

#[cfg(target_arch = "x86_64")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn avx2_attn_scores_is_bit_identical_to_scalar(
        dh in 1usize..33,
        n in 1usize..12,
        seed in 0u64..1_000,
    ) {
        if !has_avx2() {
            return Ok(());
        }
        // `stride > dh` mirrors the model's head-offset slicing (keys
        // rows are d-strided, the query spans one head). `n = 1` is the
        // single-token decode shape, larger `n` the batched-prefill one.
        let stride = dh + 3;
        let q = seeded(seed, dh);
        let keys = seeded(seed ^ 0x21, n * stride);
        let scale = 1.0 / (dh as f32).sqrt();
        let mut ss = vec![0.0f32; n];
        let mut sv = vec![0.0f32; n];
        scalar::attn_scores_into(&q, &keys, stride, scale, &mut ss);
        kernels::avx2::attn_scores_into(&q, &keys, stride, scale, &mut sv);
        for (s, v) in ss.iter().zip(&sv) {
            prop_assert_eq!(s.to_bits(), v.to_bits(), "dh {} n {}", dh, n);
        }
    }
}

#[cfg(target_arch = "x86_64")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn avx2_softmax_is_bit_identical_to_scalar(row in mat(57), widen in 0usize..2) {
        if !has_avx2() {
            return Ok(());
        }
        for len in [1usize, 7, 8, 9, 31, 57] {
            // Widened rows reach the exp flush-to-zero branch.
            let f = if widen == 1 { 40.0 } else { 1.0 };
            let mut a: Vec<f32> = row[..len].iter().map(|v| v * f).collect();
            let mut b = a.clone();
            scalar::softmax_into(&mut a);
            kernels::avx2::softmax_into(&mut b);
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "len {}", len);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn avx2_weighted_sum_is_bit_identical_to_scalar(
        dh in 1usize..33,
        n in 1usize..12,
        zero_every in 1usize..4,
        seed in 0u64..1_000,
    ) {
        if !has_avx2() {
            return Ok(());
        }
        let stride = dh + 5;
        let values = seeded(seed, n * stride);
        // Exact zeros (masked/flushed attention slots) must be skipped
        // identically on both tiers — a skipped row is not the same as
        // adding 0.0 when the accumulator holds -0.0.
        let probs: Vec<f32> = seeded(seed ^ 0x22, n)
            .iter()
            .enumerate()
            .map(|(i, &p)| if i % zero_every == 0 { 0.0 } else { p })
            .collect();
        let mut cs = vec![0.0f32; dh];
        let mut cv = vec![0.0f32; dh];
        scalar::attn_weighted_sum_into(&probs, &values, stride, &mut cs);
        kernels::avx2::attn_weighted_sum_into(&probs, &values, stride, &mut cv);
        for (s, v) in cs.iter().zip(&cv) {
            prop_assert_eq!(s.to_bits(), v.to_bits(), "dh {} n {}", dh, n);
        }
    }
}

#[cfg(target_arch = "x86_64")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn avx2_layer_norm_row_is_bit_identical_to_scalar(row in mat(57), seed in 0u64..1_000) {
        if !has_avx2() {
            return Ok(());
        }
        for len in [1usize, 7, 8, 9, 31, 57] {
            let src = &row[..len];
            let gamma = seeded(seed ^ 0x23, len);
            let beta = seeded(seed ^ 0x24, len);
            let mut os = vec![0.0f32; len];
            let mut ov = vec![0.0f32; len];
            let (ms, rs) = scalar::layer_norm_row_into(src, &gamma, &beta, &mut os);
            let (mv, rv) = kernels::avx2::layer_norm_row_into(src, &gamma, &beta, &mut ov);
            prop_assert_eq!(ms.to_bits(), mv.to_bits(), "mean, len {}", len);
            prop_assert_eq!(rs.to_bits(), rv.to_bits(), "rstd, len {}", len);
            for (x, y) in os.iter().zip(&ov) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "out, len {}", len);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vnni_qmatmul_is_exactly_avx2_and_scalar(
        m in 1usize..5,
        k in 1usize..72,
        n in 1usize..20,
        seed in 0u64..1_000,
    ) {
        if !kernels::tier_supported(kernels::IsaTier::Vnni) {
            return Ok(());
        }
        // The int8 end-to-end contract: VPDPBUSD's u8×i8 accumulation
        // (via the abs/sign transform) is the same exact i32 arithmetic
        // as the AVX2 madd path and the scalar loop — all three agree to
        // the bit, dequant and bias included. `k` spans the 32-lane VNNI
        // tail (k % 32 ≠ 0).
        let (xq, xs) = quantized(seed, m, k);
        let (wq, ws) = quantized(seed ^ 0x25, n, k);
        let bias = seeded(seed ^ 0x26, n);
        let mut os = vec![0.0f32; m * n];
        let mut oa = vec![0.0f32; m * n];
        let mut ov = vec![0.0f32; m * n];
        scalar::qmatmul_transb_into(&xq, &xs, &wq, &ws, Some(&bias), &mut os, m, k, n);
        kernels::avx2::qmatmul_transb_into(&xq, &xs, &wq, &ws, Some(&bias), &mut oa, m, k, n);
        kernels::vnni::qmatmul_transb_into(&xq, &xs, &wq, &ws, Some(&bias), &mut ov, m, k, n);
        for ((s, a), v) in os.iter().zip(&oa).zip(&ov) {
            prop_assert_eq!(s.to_bits(), a.to_bits(), "avx2 shape ({},{},{})", m, k, n);
            prop_assert_eq!(s.to_bits(), v.to_bits(), "vnni shape ({},{},{})", m, k, n);
        }
    }
}
