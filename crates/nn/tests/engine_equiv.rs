//! Property tests for the batched inference engine's equivalence
//! guarantees: across random tiny models, random sources and random beam
//! widths, the batched path must reproduce the scalar path —
//! `encode_batch` ≡ `encode`, `decode_step_batch` ≡ `decode_step`, and
//! engine beam search ≡ the per-hypothesis reference — plus the
//! `greedy == beam_search(k = 1)` head regression.

use proptest::prelude::*;
use slade_nn::{DecodeRequest, InferenceEngine, Seq2Seq, TransformerConfig};

/// A fresh untrained tiny model. Untrained weights give near-uniform,
/// tie-prone distributions — the adversarial case for rank stability.
fn model(seed: u64) -> Seq2Seq {
    Seq2Seq::new(TransformerConfig::tiny(16), seed)
}

/// A lightly trained model (sharper, realistic distributions).
fn trained_model(seed: u64) -> Seq2Seq {
    let mut m = model(seed);
    for _ in 0..12 {
        m.zero_grads();
        m.train_pair(&[4, 5, 6], &[1, 9, 10], &[9, 10, 2]);
        m.adam_step(3e-3, 0.0, 1.0);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `encode_batch` over a ragged batch matches per-sequence `encode`
    /// exactly (same kernels, same arithmetic, batched projections).
    #[test]
    fn encode_batch_matches_scalar_encode(
        seed in 0u64..500,
        l1 in 1usize..8,
        l2 in 1usize..8,
        l3 in 1usize..8,
    ) {
        let m = model(seed);
        let srcs: Vec<Vec<u32>> = [l1, l2, l3]
            .iter()
            .enumerate()
            .map(|(i, &l)| (0..l as u32).map(|t| 3 + (t + i as u32) % 12).collect())
            .collect();
        let refs: Vec<&[u32]> = srcs.iter().map(|s| s.as_slice()).collect();
        let batched = m.encode_batch(&refs);
        for (src, mem) in srcs.iter().zip(&batched) {
            let scalar = m.encode(src);
            prop_assert_eq!(mem.len(), scalar.len());
            for (a, b) in mem.iter().zip(&scalar) {
                prop_assert!((a - b).abs() <= 1e-5, "encode mismatch: {} vs {}", a, b);
            }
        }
    }

    /// `decode_step_batch` over interleaved lanes (two requests, distinct
    /// token streams) matches per-lane `decode_step` logits exactly.
    #[test]
    fn decode_step_batch_matches_scalar_steps(
        seed in 0u64..500,
        steps in 1usize..6,
        t0 in 3u32..15,
        t1 in 3u32..15,
    ) {
        let m = model(seed);
        let src_a: Vec<u32> = vec![4, 5, 6];
        let src_b: Vec<u32> = vec![7, 3];
        let mem_a = m.encode(&src_a);
        let mem_b = m.encode(&src_b);
        // Scalar lanes.
        let mut sa = m.begin_decode(&mem_a, src_a.len());
        let mut sb = m.begin_decode(&mem_b, src_b.len());
        // Batched: two lanes from different requests in one arena.
        let mut state = m.begin_decode_batch(2, steps + 1);
        let ca = m.register_cross_memory(&mut state, &mem_a, src_a.len());
        let cb = m.register_cross_memory(&mut state, &mem_b, src_b.len());
        state.add_lane(ca);
        state.add_lane(cb);
        for step in 0..steps {
            let tok_a = (t0 + step as u32) % 16;
            let tok_b = (t1 + 2 * step as u32) % 16;
            let la = m.decode_step(&mut sa, tok_a);
            let lb = m.decode_step(&mut sb, tok_b);
            let batched = m.decode_step_batch(&mut state, &[tok_a, tok_b]);
            let v = m.cfg.vocab;
            for (i, (&x, &y)) in batched[..v].iter().zip(&la).enumerate() {
                prop_assert!((x - y).abs() <= 1e-5, "lane a tok {} logit {}: {} vs {}", tok_a, i, x, y);
            }
            for (i, (&x, &y)) in batched[v..2 * v].iter().zip(&lb).enumerate() {
                prop_assert!((x - y).abs() <= 1e-5, "lane b tok {} logit {}: {} vs {}", tok_b, i, x, y);
            }
        }
        prop_assert_eq!(state.lane_len(0), steps);
    }

    /// Batched beam search returns exactly the ranked hypotheses of the
    /// per-hypothesis reference, across random models, sources and widths
    /// — including the lane-reorder (gather) machinery at beam > 1.
    #[test]
    fn batched_beam_matches_scalar_reference(
        seed in 0u64..200,
        beam in 1usize..6,
        max_len in 1usize..10,
        src_len in 1usize..6,
    ) {
        let m = trained_model(seed);
        let src: Vec<u32> = (0..src_len as u32).map(|t| 3 + (t * 5 + seed as u32) % 12).collect();
        let req = DecodeRequest { src, bos: 1, eos: 2, max_len, beam };
        let engine = InferenceEngine::new(&m);
        prop_assert_eq!(engine.decode(&req), engine.decode_scalar(&req));
    }

    /// A whole interleaved batch of requests with different beams and
    /// budgets matches each request decoded alone.
    #[test]
    fn interleaved_batch_matches_independent_decodes(seed in 0u64..100) {
        let m = trained_model(seed);
        let engine = InferenceEngine::new(&m);
        let reqs: Vec<DecodeRequest> = [
            (vec![4u32, 5, 6], 5usize, 8usize),
            (vec![6u32, 5], 2, 4),
            (vec![5u32], 1, 9),
            (vec![3u32, 8, 9, 4], 3, 6),
        ]
        .into_iter()
        .map(|(src, beam, max_len)| DecodeRequest { src, bos: 1, eos: 2, max_len, beam })
        .collect();
        let batched = engine.decode_batch(&reqs);
        prop_assert_eq!(batched.len(), reqs.len());
        for (req, got) in reqs.iter().zip(batched) {
            prop_assert_eq!(got, engine.decode_scalar(req), "src {:?}", &req.src);
        }
    }

    /// Regression: greedy decoding is exactly the head of beam_search(k=1).
    #[test]
    fn greedy_equals_beam_one_head(seed in 0u64..300, max_len in 1usize..12) {
        let m = trained_model(seed);
        let src = vec![4u32, 5, 6];
        let greedy = m.greedy(&src, 1, 2, max_len);
        let beam1 = m.beam_search(&src, 1, 2, max_len, 1);
        prop_assert_eq!(Some(&greedy), beam1.first(), "beam1 {:?}", &beam1);
    }
}
