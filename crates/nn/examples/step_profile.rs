//! Decode-throughput probe: times the batched engine step against the
//! per-lane scalar path on the `small` profile (8 requests × beam 5 = 40
//! lanes), plus the encoder for scale. The criterion benchmark
//! (`cargo bench -p slade_bench --bench micro -- decode8`) measures the
//! same comparison end to end; this example isolates the raw step loop.

use slade_nn::{Seq2Seq, TransformerConfig};
use std::time::Instant;

fn main() {
    let m = Seq2Seq::new(TransformerConfig::small(512), 7);
    let srcs: Vec<Vec<u32>> =
        (0..8).map(|i| (0..24u32).map(|t| 4 + (t * 7 + i) % 480).collect()).collect();
    let refs: Vec<&[u32]> = srcs.iter().map(|s| s.as_slice()).collect();
    let mems = m.encode_batch(&refs);
    // Batched: 40 lanes (beam 5 per request) stepping together.
    let mut state = m.begin_decode_batch(40, 25);
    for (i, mem) in mems.iter().enumerate() {
        let c = m.register_cross_memory(&mut state, mem, srcs[i].len());
        for _ in 0..5 {
            state.add_lane(c);
        }
    }
    let toks: Vec<u32> = (0..40).map(|i| 3 + i % 12).collect();
    let t0 = Instant::now();
    for _ in 0..24 {
        let _ = m.decode_step_batch(&mut state, &toks);
    }
    let batched = t0.elapsed();
    // Scalar: the same 40 lanes as independent KV-cached states.
    let mut scalars: Vec<_> =
        (0..40).map(|i| m.begin_decode(&mems[i / 5], srcs[i / 5].len())).collect();
    let t1 = Instant::now();
    for _ in 0..24 {
        for (i, st) in scalars.iter_mut().enumerate() {
            let _ = m.decode_step(st, toks[i]);
        }
    }
    let scalar = t1.elapsed();
    println!(
        "24 steps x 40 lanes: batched {batched:?}  scalar {scalar:?}  speedup {:.2}x",
        scalar.as_secs_f64() / batched.as_secs_f64()
    );
    let t2 = Instant::now();
    let _ = m.encode_batch(&refs);
    let enc_batched = t2.elapsed();
    let t3 = Instant::now();
    for s in &srcs {
        let _ = m.encode(s);
    }
    let enc_scalar = t3.elapsed();
    println!(
        "8 encodes of 24 tokens: batched {enc_batched:?}  scalar {enc_scalar:?}  speedup {:.2}x",
        enc_scalar.as_secs_f64() / enc_batched.as_secs_f64()
    );
}
