//! Runtime-dispatched SIMD kernel layer.
//!
//! Every hot kernel in this crate (`matmul_transb_into`,
//! `matmul_xposed_into`, `matmul_transb_batched`, the fused
//! log-softmax+top-k max and exp-sum passes, and the int8
//! `qmatmul_transb_into`) routes through this module. An ISA tier is selected once at startup —
//! AVX2 on x86-64 hosts that support it, NEON on aarch64, scalar
//! otherwise — and can be overridden with the `SLADE_KERNEL_ISA`
//! environment variable (`auto` | `scalar` | `avx2` | `neon`; unsupported
//! requests fall back to scalar) or in-process via [`set_tier`] (used by
//! benches and property tests to compare tiers).
//!
//! # Bit-identity contract
//!
//! All f32 tiers of a kernel produce **bit-identical** output. This is
//! load-bearing: the engine's `decode_scalar ≡ decode_batch` equivalence
//! and the serving runtime's `runtime ≡ sequential` property both assume
//! logits do not depend on which code path (or batch composition)
//! produced them. The shared accumulation semantics, per output element:
//!
//! - the reduction index `p` is split into 8 lanes by `p mod 8`;
//! - each lane accumulates its products in ascending `p` order
//!   (`lane += a*b`, a rounded multiply followed by a rounded add — no
//!   FMA anywhere, so scalar and vector rounding agree);
//! - a `k % 8` tail touches **only** lanes `0..k % 8` (never adding a
//!   `+0.0` to an untouched lane, which would flip a `-0.0` partial);
//! - lanes reduce through the fixed binary tree
//!   `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`, the order an AVX2
//!   128-bit-split horizontal add performs.
//!
//! Both matmul orientations (`transb`: B rows contiguous over `k`;
//! `xposed`: B transposed, columns contiguous) implement these exact
//! per-element semantics, so projecting through a weight matrix yields
//! the same bits regardless of orientation — the scalar decode path
//! (transb) and the batched decode path (xposed) stay interchangeable.
//!
//! The int8 kernels accumulate in exact i32 arithmetic (products are
//! bounded by 127², far from overflow for any model dimension here), so
//! they are trivially bit-identical across tiers; activations are
//! quantized by a single scalar routine on every tier for the same
//! reason.

use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set tier a kernel call executes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum IsaTier {
    /// Portable scalar reference kernels (auto-vectorized at the
    /// target's baseline, e.g. SSE2 on x86-64).
    Scalar = 0,
    /// Explicit 256-bit AVX2 intrinsics (x86-64).
    Avx2 = 1,
    /// Explicit 128-bit NEON intrinsics, paired to emulate 8 lanes
    /// (aarch64).
    Neon = 2,
}

impl IsaTier {
    /// Stable lowercase name for metrics and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            IsaTier::Scalar => "scalar",
            IsaTier::Avx2 => "avx2",
            IsaTier::Neon => "neon",
        }
    }

    fn from_u8(v: u8) -> IsaTier {
        match v {
            1 => IsaTier::Avx2,
            2 => IsaTier::Neon,
            _ => IsaTier::Scalar,
        }
    }
}

/// Sentinel meaning "tier not yet resolved".
const TIER_UNSET: u8 = u8::MAX;

/// Resolved tier; initialized lazily on first kernel call.
static ACTIVE: AtomicU8 = AtomicU8::new(TIER_UNSET);

/// The best tier this host supports, by `std::arch` feature detection.
pub fn detected_tier() -> IsaTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return IsaTier::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is architecturally mandatory on aarch64.
        return IsaTier::Neon;
    }
    #[allow(unreachable_code)]
    IsaTier::Scalar
}

/// Whether this host can actually execute `tier`.
fn tier_supported(tier: IsaTier) -> bool {
    match tier {
        IsaTier::Scalar => true,
        IsaTier::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                std::arch::is_x86_feature_detected!("avx2")
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                false
            }
        }
        IsaTier::Neon => cfg!(target_arch = "aarch64"),
    }
}

/// Resolve the startup tier: `SLADE_KERNEL_ISA` override first, then
/// feature detection. Unsupported or unrecognized requests degrade to
/// the detected tier (`auto`) or scalar.
fn resolve_tier() -> IsaTier {
    let requested = std::env::var("SLADE_KERNEL_ISA").unwrap_or_default();
    match requested.trim().to_ascii_lowercase().as_str() {
        "scalar" => IsaTier::Scalar,
        "avx2" if tier_supported(IsaTier::Avx2) => IsaTier::Avx2,
        "neon" if tier_supported(IsaTier::Neon) => IsaTier::Neon,
        "avx2" | "neon" => IsaTier::Scalar,
        _ => detected_tier(),
    }
}

/// The tier kernel dispatch currently uses (resolving it on first call).
pub fn active_tier() -> IsaTier {
    let v = ACTIVE.load(Ordering::Relaxed);
    if v != TIER_UNSET {
        return IsaTier::from_u8(v);
    }
    let tier = resolve_tier();
    ACTIVE.store(tier as u8, Ordering::Relaxed);
    tier
}

/// Force a dispatch tier in-process (benches and tests comparing tiers).
/// Requests the host cannot execute clamp to scalar; returns the tier
/// actually installed.
pub fn set_tier(tier: IsaTier) -> IsaTier {
    let t = if tier_supported(tier) { tier } else { IsaTier::Scalar };
    ACTIVE.store(t as u8, Ordering::Relaxed);
    t
}

/// Lane count of the shared accumulation semantics (see module docs).
pub const LANES: usize = 8;

/// Fixed binary-tree reduction of the 8 lane partials — the order an
/// AVX2 split-and-add horizontal reduce performs.
#[inline(always)]
fn reduce8(l: &[f32; 8]) -> f32 {
    ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]))
}

/// Pairwise max with VMAXPS semantics: `if a > b { a } else { b }`
/// (ties and NaN resolve to `b`), so scalar and vector max passes agree
/// bit-for-bit.
#[inline(always)]
fn vmax(a: f32, b: f32) -> f32 {
    if a > b {
        a
    } else {
        b
    }
}

/// Elementwise `e^x` shared by every tier of the `sum_exp` kernel, for
/// finite `x ≤ 0` (softmax operands are `v - max`). The operation
/// sequence — `exp2`-style range reduction with round-to-nearest-even, a
/// degree-6 Horner for `e^r` on `r ∈ [-ln2/2, ln2/2]`, and an
/// exponent-field scale — is mirrored instruction-for-instruction by the
/// AVX2 lane implementation, so tiers agree bit-for-bit (every step is an
/// exactly-rounded IEEE op; no FMA, no libm). Inputs below the normal
/// range flush to zero. Relative error ≤ ~4e-8, within a ulp of libm.
#[inline(always)]
fn exp_lane(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    const LN2: f32 = std::f32::consts::LN_2;
    let y = x * LOG2E;
    let n = y.round_ties_even();
    let r = (y - n) * LN2;
    let mut p = 1.0 / 720.0;
    p = p * r + 1.0 / 120.0;
    p = p * r + 1.0 / 24.0;
    p = p * r + 1.0 / 6.0;
    p = p * r + 0.5;
    p = p * r + 1.0;
    p = p * r + 1.0;
    if x < -87.0 {
        return 0.0;
    }
    // n ∈ [-126, 0] here, so the biased exponent stays normal.
    let scale = f32::from_bits(((n as i32 + 127) as u32) << 23);
    p * scale
}

/// Elementwise GELU (tanh approximation, as BART uses) shared by every
/// tier. `tanh(u)` is evaluated as `sign(u) · (1 - e) / (1 + e)` with
/// `e = exp(-2|u|)` through [`exp_lane`], so — like `exp_lane` — the
/// AVX2 lane implementation mirrors the operation sequence exactly and
/// tiers agree bit-for-bit. This is also the body of the public
/// `math::gelu`, so the training path and the dispatched decode path
/// compute the same function.
#[inline(always)]
pub(crate) fn gelu_lane(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    const A: f32 = 0.044715;
    let u = C * (x + A * x * x * x);
    let au = f32::from_bits(u.to_bits() & 0x7fff_ffff);
    let e = exp_lane(-(au + au));
    let t = (1.0 - e) / (1.0 + e);
    let t = f32::from_bits(t.to_bits() | (u.to_bits() & 0x8000_0000));
    0.5 * x * (1.0 + t)
}

/// Canonical scalar reference kernels. Every other tier must reproduce
/// these bit-for-bit (f32) or exactly (int8). Written so LLVM can
/// auto-vectorize the lane loops at the target baseline.
pub mod scalar {
    use super::{reduce8, vmax};

    /// Lane-split dot product of two equal-length contiguous slices.
    #[inline]
    pub(crate) fn dot8(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut lanes = [0.0f32; 8];
        let chunks = a.len() / 8;
        for (av, bv) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
            for ((l, &x), &y) in lanes.iter_mut().zip(av).zip(bv) {
                *l += x * y;
            }
        }
        let base = chunks * 8;
        for ((l, &x), &y) in lanes.iter_mut().zip(&a[base..]).zip(&b[base..]) {
            *l += x * y;
        }
        reduce8(&lanes)
    }

    /// Lane-split dot of row `ar` against column `j` of `bt` (`bt` is
    /// `k x n`, so the column is strided by `n`). Shared by the xposed
    /// column-tail of every tier.
    #[inline]
    pub(crate) fn dot8_col(ar: &[f32], bt: &[f32], n: usize, j: usize) -> f32 {
        let mut lanes = [0.0f32; 8];
        for (p, &av) in ar.iter().enumerate() {
            lanes[p & 7] += av * bt[p * n + j];
        }
        reduce8(&lanes)
    }

    /// `C = A * B^T` into `c` — scalar tier.
    /// `a` is `m x k`, `b` is `n x k` (rows contiguous over `k`),
    /// `c` is `m x n`.
    pub fn matmul_transb_into(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        for i in 0..m {
            let ar = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n..(i + 1) * n];
            for (j, cv) in crow.iter_mut().enumerate() {
                *cv = dot8(ar, &b[j * k..(j + 1) * k]);
            }
        }
    }

    /// `C = A * B` into `c` where `bt` is B pre-transposed to `k x n`
    /// (output columns contiguous) — scalar tier. Accumulates an
    /// 8-lane x 8-column tile so the column loop auto-vectorizes.
    pub fn matmul_xposed_into(
        a: &[f32],
        bt: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        let nblocks = n / 8;
        for i in 0..m {
            let ar = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n..(i + 1) * n];
            for jb in 0..nblocks {
                let j0 = jb * 8;
                // acc[lane][col]: lane = p mod 8, col within the j-block.
                let mut acc = [[0.0f32; 8]; 8];
                for (p, &av) in ar.iter().enumerate() {
                    let brow = &bt[p * n + j0..p * n + j0 + 8];
                    for (q, &bv) in acc[p & 7].iter_mut().zip(brow) {
                        *q += av * bv;
                    }
                }
                for (col, cv) in crow[j0..j0 + 8].iter_mut().enumerate() {
                    let lanes = [
                        acc[0][col],
                        acc[1][col],
                        acc[2][col],
                        acc[3][col],
                        acc[4][col],
                        acc[5][col],
                        acc[6][col],
                        acc[7][col],
                    ];
                    *cv = reduce8(&lanes);
                }
            }
            for (j, cv) in crow.iter_mut().enumerate().skip(nblocks * 8) {
                *cv = dot8_col(ar, bt, n, j);
            }
        }
    }

    /// `C = A * B` with `bp` = B packed by [`super::pack_xposed_blocks`]
    /// — scalar tier. Identical per-element accumulation to
    /// [`matmul_xposed_into`]; only the addresses the reduction walks
    /// differ (sequential slabs instead of `n`-strided columns).
    pub fn matmul_xpacked_into(
        a: &[f32],
        bp: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        let nblocks = n / 8;
        let tail_base = nblocks * k * 8;
        for i in 0..m {
            let ar = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n..(i + 1) * n];
            for jb in 0..nblocks {
                let slab = &bp[jb * k * 8..(jb + 1) * k * 8];
                let mut acc = [[0.0f32; 8]; 8];
                for (p, &av) in ar.iter().enumerate() {
                    let brow = &slab[p * 8..(p + 1) * 8];
                    for (q, &bv) in acc[p & 7].iter_mut().zip(brow) {
                        *q += av * bv;
                    }
                }
                for (col, cv) in crow[jb * 8..(jb + 1) * 8].iter_mut().enumerate() {
                    let lanes = [
                        acc[0][col],
                        acc[1][col],
                        acc[2][col],
                        acc[3][col],
                        acc[4][col],
                        acc[5][col],
                        acc[6][col],
                        acc[7][col],
                    ];
                    *cv = reduce8(&lanes);
                }
            }
            for (jt, cv) in crow.iter_mut().skip(nblocks * 8).enumerate() {
                // Tail columns are stored contiguously, so the plain
                // lane-split dot applies (same semantics as dot8_col).
                *cv = dot8(ar, &bp[tail_base + jt * k..tail_base + (jt + 1) * k]);
            }
        }
    }

    /// Lane-split `Σ exp(v - max)` (the log-softmax normalizer) — scalar
    /// tier. Uses the shared polynomial [`super::exp_lane`] on every
    /// tier, so the sum is bit-identical regardless of dispatch.
    pub fn sum_exp(row: &[f32], max: f32) -> f32 {
        let mut lanes = [0.0f32; 8];
        for (p, &v) in row.iter().enumerate() {
            lanes[p & 7] += super::exp_lane(v - max);
        }
        reduce8(&lanes)
    }

    /// Elementwise GELU over a buffer — scalar tier. Purely elementwise
    /// (no reduction), so no lane split is needed for cross-tier
    /// bit-identity: each output depends only on its own input through
    /// the shared [`super::gelu_lane`] operation sequence.
    pub fn gelu_into(buf: &mut [f32]) {
        for v in buf {
            *v = super::gelu_lane(*v);
        }
    }

    /// Row max with VMAXPS-compatible lane semantics — scalar tier.
    pub fn row_max(row: &[f32]) -> f32 {
        let mut lanes = [f32::NEG_INFINITY; 8];
        for (p, &v) in row.iter().enumerate() {
            let l = p & 7;
            lanes[l] = vmax(lanes[l], v);
        }
        vmax(
            vmax(vmax(lanes[0], lanes[4]), vmax(lanes[2], lanes[6])),
            vmax(vmax(lanes[1], lanes[5]), vmax(lanes[3], lanes[7])),
        )
    }

    /// Exact i8 x i8 -> i32 dot product — scalar tier.
    #[inline]
    pub(crate) fn qdot(x: &[i8], w: &[i8]) -> i32 {
        let mut acc = 0i32;
        for (&xv, &wv) in x.iter().zip(w) {
            acc += xv as i32 * wv as i32;
        }
        acc
    }

    /// Int8 `C = Xq * Wq^T` with f32 dequant-on-accumulate — scalar
    /// tier. `xq` is `m x k` with per-row scales `xs`, `wq` is `n x k`
    /// with per-row scales `ws`; `out[i,j] = dot_i32 * (xs[i]*ws[j]) +
    /// bias[j]`.
    #[allow(clippy::too_many_arguments)]
    pub fn qmatmul_transb_into(
        xq: &[i8],
        xs: &[f32],
        wq: &[i8],
        ws: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        for i in 0..m {
            let xr = &xq[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (j, ov) in orow.iter_mut().enumerate() {
                let acc = qdot(xr, &wq[j * k..(j + 1) * k]);
                let deq = acc as f32 * (xs[i] * ws[j]);
                *ov = match bias {
                    Some(b) => deq + b[j],
                    None => deq,
                };
            }
        }
    }
}

/// AVX2 tier: 256-bit kernels bit-identical to [`scalar`]. Safe
/// wrappers assert AVX2 support before entering `target_feature` code.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use super::reduce8;
    use super::scalar::{dot8_col, qdot};
    use std::arch::x86_64::*;

    #[inline]
    fn assert_avx2() {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "AVX2 kernels called on a host without AVX2"
        );
    }

    /// `C = A * B^T` into `c` — AVX2 tier (see [`scalar::matmul_transb_into`]).
    pub fn matmul_transb_into(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        assert!(a.len() >= m * k && b.len() >= n * k && c.len() >= m * n);
        assert_avx2();
        unsafe { transb_avx2(a, b, c, m, k, n) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn transb_avx2(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let chunks = k / 8;
        let tail = k % 8;
        let base = chunks * 8;
        for i in 0..m {
            let ar = a.as_ptr().add(i * k);
            // Four output columns at a time: each keeps its own lane
            // accumulator (so per-element accumulation is unchanged),
            // and the four independent add chains hide vaddps latency
            // that a single chain would expose.
            let mut j = 0usize;
            while j + 4 <= n {
                let b0 = b.as_ptr().add(j * k);
                let b1 = b.as_ptr().add((j + 1) * k);
                let b2 = b.as_ptr().add((j + 2) * k);
                let b3 = b.as_ptr().add((j + 3) * k);
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                let mut acc2 = _mm256_setzero_ps();
                let mut acc3 = _mm256_setzero_ps();
                for ch in 0..chunks {
                    let av = _mm256_loadu_ps(ar.add(ch * 8));
                    // mul + add (no FMA): rounding must match scalar.
                    acc0 =
                        _mm256_add_ps(acc0, _mm256_mul_ps(av, _mm256_loadu_ps(b0.add(ch * 8))));
                    acc1 =
                        _mm256_add_ps(acc1, _mm256_mul_ps(av, _mm256_loadu_ps(b1.add(ch * 8))));
                    acc2 =
                        _mm256_add_ps(acc2, _mm256_mul_ps(av, _mm256_loadu_ps(b2.add(ch * 8))));
                    acc3 =
                        _mm256_add_ps(acc3, _mm256_mul_ps(av, _mm256_loadu_ps(b3.add(ch * 8))));
                }
                for (col, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
                    let mut lanes = [0.0f32; 8];
                    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
                    let br = b.as_ptr().add((j + col) * k);
                    for (l, lane) in lanes.iter_mut().enumerate().take(tail) {
                        *lane += *ar.add(base + l) * *br.add(base + l);
                    }
                    c[i * n + j + col] = reduce8(&lanes);
                }
                j += 4;
            }
            while j < n {
                let br = b.as_ptr().add(j * k);
                let mut acc = _mm256_setzero_ps();
                for ch in 0..chunks {
                    let av = _mm256_loadu_ps(ar.add(ch * 8));
                    let bv = _mm256_loadu_ps(br.add(ch * 8));
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(av, bv));
                }
                let mut lanes = [0.0f32; 8];
                _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
                for (l, lane) in lanes.iter_mut().enumerate().take(tail) {
                    *lane += *ar.add(base + l) * *br.add(base + l);
                }
                c[i * n + j] = reduce8(&lanes);
                j += 1;
            }
        }
    }

    /// `C = A * B` with pre-transposed `bt` — AVX2 tier (see
    /// [`scalar::matmul_xposed_into`]).
    pub fn matmul_xposed_into(
        a: &[f32],
        bt: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        assert!(a.len() >= m * k && bt.len() >= k * n && c.len() >= m * n);
        assert_avx2();
        unsafe { xposed_avx2(a, bt, c, m, k, n) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn xposed_avx2(a: &[f32], bt: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let nblocks = n / 8;
        let chunks = k / 8;
        let ktail = k % 8;
        let base = chunks * 8;
        // j-block outer so the `k x 8` slab of `bt` this block reads
        // stays cache-hot across all `m` rows of `a` (the loop
        // interchange reorders whole output elements, never the
        // accumulation inside one, so bit-identity is unaffected).
        for jb in 0..nblocks {
            let j0 = jb * 8;
            for i in 0..m {
                let ar = a.as_ptr().add(i * k);
                // One named accumulator per lane (p mod 8): a dynamic
                // `acc[p & 7]` would force the array into memory; named
                // registers keep the whole rotation in ymm.
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                let mut acc2 = _mm256_setzero_ps();
                let mut acc3 = _mm256_setzero_ps();
                let mut acc4 = _mm256_setzero_ps();
                let mut acc5 = _mm256_setzero_ps();
                let mut acc6 = _mm256_setzero_ps();
                let mut acc7 = _mm256_setzero_ps();
                for ch in 0..chunks {
                    let p = ch * 8;
                    let col = bt.as_ptr().add(p * n + j0);
                    let av = ar.add(p);
                    acc0 = _mm256_add_ps(
                        acc0,
                        _mm256_mul_ps(_mm256_set1_ps(*av), _mm256_loadu_ps(col)),
                    );
                    acc1 = _mm256_add_ps(
                        acc1,
                        _mm256_mul_ps(_mm256_set1_ps(*av.add(1)), _mm256_loadu_ps(col.add(n))),
                    );
                    acc2 = _mm256_add_ps(
                        acc2,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(2)),
                            _mm256_loadu_ps(col.add(2 * n)),
                        ),
                    );
                    acc3 = _mm256_add_ps(
                        acc3,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(3)),
                            _mm256_loadu_ps(col.add(3 * n)),
                        ),
                    );
                    acc4 = _mm256_add_ps(
                        acc4,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(4)),
                            _mm256_loadu_ps(col.add(4 * n)),
                        ),
                    );
                    acc5 = _mm256_add_ps(
                        acc5,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(5)),
                            _mm256_loadu_ps(col.add(5 * n)),
                        ),
                    );
                    acc6 = _mm256_add_ps(
                        acc6,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(6)),
                            _mm256_loadu_ps(col.add(6 * n)),
                        ),
                    );
                    acc7 = _mm256_add_ps(
                        acc7,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(7)),
                            _mm256_loadu_ps(col.add(7 * n)),
                        ),
                    );
                }
                // k tail: ascending p into lanes 0..ktail only.
                let col = bt.as_ptr().add(base * n + j0);
                let av = ar.add(base);
                if ktail > 0 {
                    acc0 = _mm256_add_ps(
                        acc0,
                        _mm256_mul_ps(_mm256_set1_ps(*av), _mm256_loadu_ps(col)),
                    );
                }
                if ktail > 1 {
                    acc1 = _mm256_add_ps(
                        acc1,
                        _mm256_mul_ps(_mm256_set1_ps(*av.add(1)), _mm256_loadu_ps(col.add(n))),
                    );
                }
                if ktail > 2 {
                    acc2 = _mm256_add_ps(
                        acc2,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(2)),
                            _mm256_loadu_ps(col.add(2 * n)),
                        ),
                    );
                }
                if ktail > 3 {
                    acc3 = _mm256_add_ps(
                        acc3,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(3)),
                            _mm256_loadu_ps(col.add(3 * n)),
                        ),
                    );
                }
                if ktail > 4 {
                    acc4 = _mm256_add_ps(
                        acc4,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(4)),
                            _mm256_loadu_ps(col.add(4 * n)),
                        ),
                    );
                }
                if ktail > 5 {
                    acc5 = _mm256_add_ps(
                        acc5,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(5)),
                            _mm256_loadu_ps(col.add(5 * n)),
                        ),
                    );
                }
                if ktail > 6 {
                    acc6 = _mm256_add_ps(
                        acc6,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(6)),
                            _mm256_loadu_ps(col.add(6 * n)),
                        ),
                    );
                }
                // Element-wise tree over the 8 lane vectors — the same
                // tree reduce8 performs per element.
                let s04 = _mm256_add_ps(acc0, acc4);
                let s26 = _mm256_add_ps(acc2, acc6);
                let s15 = _mm256_add_ps(acc1, acc5);
                let s37 = _mm256_add_ps(acc3, acc7);
                let even = _mm256_add_ps(s04, s26);
                let odd = _mm256_add_ps(s15, s37);
                _mm256_storeu_ps(c.as_mut_ptr().add(i * n + j0), _mm256_add_ps(even, odd));
            }
        }
        for i in 0..m {
            let ar = &a[i * k..(i + 1) * k];
            for j in nblocks * 8..n {
                c[i * n + j] = dot8_col(ar, bt, n, j);
            }
        }
    }

    /// `C = A * B` with `bp` packed by [`super::pack_xposed_blocks`] —
    /// AVX2 tier (see [`scalar::matmul_xpacked_into`]).
    pub fn matmul_xpacked_into(
        a: &[f32],
        bp: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        assert!(a.len() >= m * k && bp.len() >= k * n && c.len() >= m * n);
        assert_avx2();
        unsafe { xpacked_avx2(a, bp, c, m, k, n) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn xpacked_avx2(a: &[f32], bp: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let nblocks = n / 8;
        let chunks = k / 8;
        let ktail = k % 8;
        let base = chunks * 8;
        // j-block outer: each block's 2 KiB slab is read sequentially
        // and stays L1-hot across all `m` rows of `a`.
        for jb in 0..nblocks {
            let slab = bp.as_ptr().add(jb * k * 8);
            for i in 0..m {
                let ar = a.as_ptr().add(i * k);
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                let mut acc2 = _mm256_setzero_ps();
                let mut acc3 = _mm256_setzero_ps();
                let mut acc4 = _mm256_setzero_ps();
                let mut acc5 = _mm256_setzero_ps();
                let mut acc6 = _mm256_setzero_ps();
                let mut acc7 = _mm256_setzero_ps();
                for ch in 0..chunks {
                    let p = ch * 8;
                    let av = ar.add(p);
                    let brow = slab.add(p * 8);
                    acc0 = _mm256_add_ps(
                        acc0,
                        _mm256_mul_ps(_mm256_set1_ps(*av), _mm256_loadu_ps(brow)),
                    );
                    acc1 = _mm256_add_ps(
                        acc1,
                        _mm256_mul_ps(_mm256_set1_ps(*av.add(1)), _mm256_loadu_ps(brow.add(8))),
                    );
                    acc2 = _mm256_add_ps(
                        acc2,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(2)),
                            _mm256_loadu_ps(brow.add(16)),
                        ),
                    );
                    acc3 = _mm256_add_ps(
                        acc3,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(3)),
                            _mm256_loadu_ps(brow.add(24)),
                        ),
                    );
                    acc4 = _mm256_add_ps(
                        acc4,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(4)),
                            _mm256_loadu_ps(brow.add(32)),
                        ),
                    );
                    acc5 = _mm256_add_ps(
                        acc5,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(5)),
                            _mm256_loadu_ps(brow.add(40)),
                        ),
                    );
                    acc6 = _mm256_add_ps(
                        acc6,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(6)),
                            _mm256_loadu_ps(brow.add(48)),
                        ),
                    );
                    acc7 = _mm256_add_ps(
                        acc7,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(7)),
                            _mm256_loadu_ps(brow.add(56)),
                        ),
                    );
                }
                let av = ar.add(base);
                let brow = slab.add(base * 8);
                if ktail > 0 {
                    acc0 = _mm256_add_ps(
                        acc0,
                        _mm256_mul_ps(_mm256_set1_ps(*av), _mm256_loadu_ps(brow)),
                    );
                }
                if ktail > 1 {
                    acc1 = _mm256_add_ps(
                        acc1,
                        _mm256_mul_ps(_mm256_set1_ps(*av.add(1)), _mm256_loadu_ps(brow.add(8))),
                    );
                }
                if ktail > 2 {
                    acc2 = _mm256_add_ps(
                        acc2,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(2)),
                            _mm256_loadu_ps(brow.add(16)),
                        ),
                    );
                }
                if ktail > 3 {
                    acc3 = _mm256_add_ps(
                        acc3,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(3)),
                            _mm256_loadu_ps(brow.add(24)),
                        ),
                    );
                }
                if ktail > 4 {
                    acc4 = _mm256_add_ps(
                        acc4,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(4)),
                            _mm256_loadu_ps(brow.add(32)),
                        ),
                    );
                }
                if ktail > 5 {
                    acc5 = _mm256_add_ps(
                        acc5,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(5)),
                            _mm256_loadu_ps(brow.add(40)),
                        ),
                    );
                }
                if ktail > 6 {
                    acc6 = _mm256_add_ps(
                        acc6,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(6)),
                            _mm256_loadu_ps(brow.add(48)),
                        ),
                    );
                }
                let s04 = _mm256_add_ps(acc0, acc4);
                let s26 = _mm256_add_ps(acc2, acc6);
                let s15 = _mm256_add_ps(acc1, acc5);
                let s37 = _mm256_add_ps(acc3, acc7);
                let even = _mm256_add_ps(s04, s26);
                let odd = _mm256_add_ps(s15, s37);
                _mm256_storeu_ps(c.as_mut_ptr().add(i * n + jb * 8), _mm256_add_ps(even, odd));
            }
        }
        let tail_base = nblocks * k * 8;
        for i in 0..m {
            let ar = &a[i * k..(i + 1) * k];
            for (jt, j) in (nblocks * 8..n).enumerate() {
                c[i * n + j] =
                    super::scalar::dot8(ar, &bp[tail_base + jt * k..tail_base + (jt + 1) * k]);
            }
        }
    }

    /// Row max — AVX2 tier (see [`scalar::row_max`]).
    pub fn row_max(row: &[f32]) -> f32 {
        assert_avx2();
        unsafe { row_max_avx2(row) }
    }

    /// `Σ exp(v - max)` — AVX2 tier (see [`scalar::sum_exp`]).
    pub fn sum_exp(row: &[f32], max: f32) -> f32 {
        assert_avx2();
        unsafe { sum_exp_avx2(row, max) }
    }

    /// Vector mirror of [`super::exp_lane`] — the identical operation
    /// sequence per element, so each lane rounds exactly as the scalar
    /// tier does.
    #[target_feature(enable = "avx2")]
    unsafe fn exp8(x: __m256) -> __m256 {
        let y = _mm256_mul_ps(x, _mm256_set1_ps(std::f32::consts::LOG2_E));
        let n = _mm256_round_ps(y, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        let r = _mm256_mul_ps(_mm256_sub_ps(y, n), _mm256_set1_ps(std::f32::consts::LN_2));
        let mut p = _mm256_set1_ps(1.0 / 720.0);
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.0 / 120.0));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.0 / 24.0));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.0 / 6.0));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(0.5));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.0));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.0));
        let ni = _mm256_cvtps_epi32(n);
        let scale = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            ni,
            _mm256_set1_epi32(127),
        )));
        let res = _mm256_mul_ps(p, scale);
        // Flush x < -87 to zero (same threshold as the scalar tier; the
        // kept range has a normal biased exponent, so `scale` is exact).
        let keep = _mm256_cmp_ps::<_CMP_GE_OQ>(x, _mm256_set1_ps(-87.0));
        _mm256_and_ps(res, keep)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn sum_exp_avx2(row: &[f32], max: f32) -> f32 {
        let chunks = row.len() / 8;
        let base = chunks * 8;
        let maxv = _mm256_set1_ps(max);
        let mut acc = _mm256_setzero_ps();
        for ch in 0..chunks {
            let v = _mm256_loadu_ps(row.as_ptr().add(ch * 8));
            acc = _mm256_add_ps(acc, exp8(_mm256_sub_ps(v, maxv)));
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for (l, &v) in lanes.iter_mut().zip(&row[base..]) {
            *l += super::exp_lane(v - max);
        }
        reduce8(&lanes)
    }

    /// Elementwise GELU over a buffer — AVX2 tier (see
    /// [`scalar::gelu_into`]).
    pub fn gelu_into(buf: &mut [f32]) {
        assert_avx2();
        unsafe { gelu_avx2(buf) }
    }

    /// Vector mirror of [`super::gelu_lane`]: the same mul/add chain for
    /// the tanh argument, `exp8` for `e = exp(-2|u|)`, an exactly-rounded
    /// VDIVPS for `(1 - e) / (1 + e)`, and sign reattachment via bit ops.
    #[target_feature(enable = "avx2")]
    unsafe fn gelu8(x: __m256) -> __m256 {
        let c = _mm256_set1_ps(0.797_884_6);
        let a = _mm256_set1_ps(0.044715);
        let one = _mm256_set1_ps(1.0);
        let sign = _mm256_set1_ps(-0.0);
        let x3 = _mm256_mul_ps(_mm256_mul_ps(_mm256_mul_ps(a, x), x), x);
        let u = _mm256_mul_ps(c, _mm256_add_ps(x, x3));
        let au = _mm256_andnot_ps(sign, u);
        let e = exp8(_mm256_xor_ps(_mm256_add_ps(au, au), sign));
        let t = _mm256_div_ps(_mm256_sub_ps(one, e), _mm256_add_ps(one, e));
        let t = _mm256_or_ps(t, _mm256_and_ps(u, sign));
        _mm256_mul_ps(_mm256_mul_ps(_mm256_set1_ps(0.5), x), _mm256_add_ps(one, t))
    }

    #[target_feature(enable = "avx2")]
    unsafe fn gelu_avx2(buf: &mut [f32]) {
        let chunks = buf.len() / 8;
        let base = chunks * 8;
        for ch in 0..chunks {
            let p = buf.as_mut_ptr().add(ch * 8);
            _mm256_storeu_ps(p, gelu8(_mm256_loadu_ps(p)));
        }
        for v in &mut buf[base..] {
            *v = super::gelu_lane(*v);
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn row_max_avx2(row: &[f32]) -> f32 {
        let chunks = row.len() / 8;
        let base = chunks * 8;
        let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
        for ch in 0..chunks {
            let v = _mm256_loadu_ps(row.as_ptr().add(ch * 8));
            acc = _mm256_max_ps(acc, v);
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for (l, &v) in lanes.iter_mut().zip(&row[base..]) {
            *l = super::vmax(*l, v);
        }
        super::vmax(
            super::vmax(super::vmax(lanes[0], lanes[4]), super::vmax(lanes[2], lanes[6])),
            super::vmax(super::vmax(lanes[1], lanes[5]), super::vmax(lanes[3], lanes[7])),
        )
    }

    /// Int8 matmul — AVX2 tier (see [`scalar::qmatmul_transb_into`]).
    /// The i32 accumulation is exact, so this is bit-identical to the
    /// scalar tier by construction.
    #[allow(clippy::too_many_arguments)]
    pub fn qmatmul_transb_into(
        xq: &[i8],
        xs: &[f32],
        wq: &[i8],
        ws: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        assert!(xq.len() >= m * k && wq.len() >= n * k && out.len() >= m * n);
        assert_avx2();
        unsafe { qmatmul_avx2(xq, xs, wq, ws, bias, out, m, k, n) }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn qmatmul_avx2(
        xq: &[i8],
        xs: &[f32],
        wq: &[i8],
        ws: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        let chunks = k / 32;
        let base = chunks * 32;
        for i in 0..m {
            let xr = xq.as_ptr().add(i * k);
            for j in 0..n {
                let wr = wq.as_ptr().add(j * k);
                let mut acc = _mm256_setzero_si256();
                for ch in 0..chunks {
                    let xv = _mm256_loadu_si256(xr.add(ch * 32) as *const __m256i);
                    let wv = _mm256_loadu_si256(wr.add(ch * 32) as *const __m256i);
                    let xlo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(xv));
                    let xhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(xv, 1));
                    let wlo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(wv));
                    let whi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(wv, 1));
                    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xlo, wlo));
                    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xhi, whi));
                }
                let mut lanes = [0i32; 8];
                _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
                let mut sum: i32 = lanes.iter().sum();
                sum += qdot(
                    std::slice::from_raw_parts(xr.add(base), k - base),
                    std::slice::from_raw_parts(wr.add(base), k - base),
                );
                let deq = sum as f32 * (xs[i] * ws[j]);
                out[i * n + j] = match bias {
                    Some(b) => deq + b[j],
                    None => deq,
                };
            }
        }
    }
}

/// NEON tier (aarch64): paired 128-bit q-registers emulate the 8-lane
/// semantics — lanes 0-3 in the low register, 4-7 in the high one — so
/// the lo/hi tree reduce matches the AVX2 split reduce bit-for-bit.
/// The int8 kernel reuses the scalar i32 path (exact arithmetic makes
/// any implementation bit-identical; vectorizing it is a pure perf
/// follow-up on real aarch64 hardware).
#[cfg(target_arch = "aarch64")]
pub mod neon {
    use super::reduce8;
    use super::scalar::{dot8_col, qdot};
    use std::arch::aarch64::*;

    /// `C = A * B^T` into `c` — NEON tier (see [`scalar::matmul_transb_into`]).
    pub fn matmul_transb_into(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        assert!(a.len() >= m * k && b.len() >= n * k && c.len() >= m * n);
        unsafe { transb_neon(a, b, c, m, k, n) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn transb_neon(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let chunks = k / 8;
        let tail = k % 8;
        let base = chunks * 8;
        for i in 0..m {
            let ar = a.as_ptr().add(i * k);
            for j in 0..n {
                let br = b.as_ptr().add(j * k);
                let mut acc_lo = vdupq_n_f32(0.0);
                let mut acc_hi = vdupq_n_f32(0.0);
                for ch in 0..chunks {
                    let alo = vld1q_f32(ar.add(ch * 8));
                    let ahi = vld1q_f32(ar.add(ch * 8 + 4));
                    let blo = vld1q_f32(br.add(ch * 8));
                    let bhi = vld1q_f32(br.add(ch * 8 + 4));
                    // mul + add (no fused multiply-accumulate): rounding
                    // must match the scalar tier.
                    acc_lo = vaddq_f32(acc_lo, vmulq_f32(alo, blo));
                    acc_hi = vaddq_f32(acc_hi, vmulq_f32(ahi, bhi));
                }
                let mut lanes = [0.0f32; 8];
                vst1q_f32(lanes.as_mut_ptr(), acc_lo);
                vst1q_f32(lanes.as_mut_ptr().add(4), acc_hi);
                for l in 0..tail {
                    lanes[l] += *ar.add(base + l) * *br.add(base + l);
                }
                c[i * n + j] = reduce8(&lanes);
            }
        }
    }

    /// `C = A * B` with pre-transposed `bt` — NEON tier (see
    /// [`scalar::matmul_xposed_into`]).
    pub fn matmul_xposed_into(
        a: &[f32],
        bt: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        assert!(a.len() >= m * k && bt.len() >= k * n && c.len() >= m * n);
        unsafe { xposed_neon(a, bt, c, m, k, n) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn xposed_neon(a: &[f32], bt: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let nblocks = n / 8;
        for i in 0..m {
            let ar = &a[i * k..(i + 1) * k];
            for jb in 0..nblocks {
                let j0 = jb * 8;
                // acc[lane] = (cols 0-3, cols 4-7) of this j-block.
                let mut acc = [(vdupq_n_f32(0.0), vdupq_n_f32(0.0)); 8];
                for (p, &av) in ar.iter().enumerate() {
                    let avv = vdupq_n_f32(av);
                    let blo = vld1q_f32(bt.as_ptr().add(p * n + j0));
                    let bhi = vld1q_f32(bt.as_ptr().add(p * n + j0 + 4));
                    let l = p & 7;
                    acc[l].0 = vaddq_f32(acc[l].0, vmulq_f32(avv, blo));
                    acc[l].1 = vaddq_f32(acc[l].1, vmulq_f32(avv, bhi));
                }
                let e_lo =
                    vaddq_f32(vaddq_f32(acc[0].0, acc[4].0), vaddq_f32(acc[2].0, acc[6].0));
                let o_lo =
                    vaddq_f32(vaddq_f32(acc[1].0, acc[5].0), vaddq_f32(acc[3].0, acc[7].0));
                let e_hi =
                    vaddq_f32(vaddq_f32(acc[0].1, acc[4].1), vaddq_f32(acc[2].1, acc[6].1));
                let o_hi =
                    vaddq_f32(vaddq_f32(acc[1].1, acc[5].1), vaddq_f32(acc[3].1, acc[7].1));
                vst1q_f32(c.as_mut_ptr().add(i * n + j0), vaddq_f32(e_lo, o_lo));
                vst1q_f32(c.as_mut_ptr().add(i * n + j0 + 4), vaddq_f32(e_hi, o_hi));
            }
            for j in nblocks * 8..n {
                c[i * n + j] = dot8_col(ar, bt, n, j);
            }
        }
    }

    /// `C = A * B` with `bp` packed by [`super::pack_xposed_blocks`] —
    /// NEON tier (see [`scalar::matmul_xpacked_into`]).
    pub fn matmul_xpacked_into(
        a: &[f32],
        bp: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        assert!(a.len() >= m * k && bp.len() >= k * n && c.len() >= m * n);
        unsafe { xpacked_neon(a, bp, c, m, k, n) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn xpacked_neon(a: &[f32], bp: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let nblocks = n / 8;
        for jb in 0..nblocks {
            let slab = bp.as_ptr().add(jb * k * 8);
            for i in 0..m {
                let ar = &a[i * k..(i + 1) * k];
                // acc[lane] = (cols 0-3, cols 4-7) of this j-block.
                let mut acc = [(vdupq_n_f32(0.0), vdupq_n_f32(0.0)); 8];
                for (p, &av) in ar.iter().enumerate() {
                    let avv = vdupq_n_f32(av);
                    let blo = vld1q_f32(slab.add(p * 8));
                    let bhi = vld1q_f32(slab.add(p * 8 + 4));
                    let l = p & 7;
                    acc[l].0 = vaddq_f32(acc[l].0, vmulq_f32(avv, blo));
                    acc[l].1 = vaddq_f32(acc[l].1, vmulq_f32(avv, bhi));
                }
                let e_lo =
                    vaddq_f32(vaddq_f32(acc[0].0, acc[4].0), vaddq_f32(acc[2].0, acc[6].0));
                let o_lo =
                    vaddq_f32(vaddq_f32(acc[1].0, acc[5].0), vaddq_f32(acc[3].0, acc[7].0));
                let e_hi =
                    vaddq_f32(vaddq_f32(acc[0].1, acc[4].1), vaddq_f32(acc[2].1, acc[6].1));
                let o_hi =
                    vaddq_f32(vaddq_f32(acc[1].1, acc[5].1), vaddq_f32(acc[3].1, acc[7].1));
                vst1q_f32(c.as_mut_ptr().add(i * n + jb * 8), vaddq_f32(e_lo, o_lo));
                vst1q_f32(c.as_mut_ptr().add(i * n + jb * 8 + 4), vaddq_f32(e_hi, o_hi));
            }
        }
        let tail_base = nblocks * k * 8;
        for i in 0..m {
            let ar = &a[i * k..(i + 1) * k];
            for (jt, j) in (nblocks * 8..n).enumerate() {
                c[i * n + j] =
                    super::scalar::dot8(ar, &bp[tail_base + jt * k..tail_base + (jt + 1) * k]);
            }
        }
    }

    /// Row max — NEON tier (see [`scalar::row_max`]).
    pub fn row_max(row: &[f32]) -> f32 {
        unsafe { row_max_neon(row) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn row_max_neon(row: &[f32]) -> f32 {
        let chunks = row.len() / 8;
        let base = chunks * 8;
        let mut acc_lo = vdupq_n_f32(f32::NEG_INFINITY);
        let mut acc_hi = vdupq_n_f32(f32::NEG_INFINITY);
        for ch in 0..chunks {
            acc_lo = vmaxq_f32(acc_lo, vld1q_f32(row.as_ptr().add(ch * 8)));
            acc_hi = vmaxq_f32(acc_hi, vld1q_f32(row.as_ptr().add(ch * 8 + 4)));
        }
        let mut lanes = [0.0f32; 8];
        vst1q_f32(lanes.as_mut_ptr(), acc_lo);
        vst1q_f32(lanes.as_mut_ptr().add(4), acc_hi);
        for (l, &v) in lanes.iter_mut().zip(&row[base..]) {
            *l = super::vmax(*l, v);
        }
        super::vmax(
            super::vmax(super::vmax(lanes[0], lanes[4]), super::vmax(lanes[2], lanes[6])),
            super::vmax(super::vmax(lanes[1], lanes[5]), super::vmax(lanes[3], lanes[7])),
        )
    }

    /// Int8 matmul — NEON tier delegates to the scalar i32 path (exact,
    /// therefore bit-identical).
    #[allow(clippy::too_many_arguments)]
    pub fn qmatmul_transb_into(
        xq: &[i8],
        xs: &[f32],
        wq: &[i8],
        ws: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        let _ = qdot; // shared helper referenced so tiers stay symmetric
        super::scalar::qmatmul_transb_into(xq, xs, wq, ws, bias, out, m, k, n);
    }
}

/// Dispatched `C = A * B^T` (`a`: `m x k`, `b`: `n x k`, `c`: `m x n`).
pub fn matmul_transb_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 => avx2::matmul_transb_into(a, b, c, m, k, n),
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon => neon::matmul_transb_into(a, b, c, m, k, n),
        _ => scalar::matmul_transb_into(a, b, c, m, k, n),
    }
}

/// Dispatched `C = A * B` with `bt` = B pre-transposed to `k x n`.
pub fn matmul_xposed_into(a: &[f32], bt: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 => avx2::matmul_xposed_into(a, bt, c, m, k, n),
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon => neon::matmul_xposed_into(a, bt, c, m, k, n),
        _ => scalar::matmul_xposed_into(a, bt, c, m, k, n),
    }
}

/// Packs a pre-transposed `k x n` matrix (`bt`, output columns
/// contiguous) into the layout the `matmul_xpacked_into` kernels read:
/// one sequential `k x 8` slab per full j-block (slab row `p` holds the
/// block's 8 columns at reduction index `p`), followed by each tail
/// column stored contiguously over `k`. Done once at weight
/// materialization: the plain layout walks columns at an `n`-element
/// stride, which for large `n` (the logits projection) lands every row
/// in the same few L1 sets and thrashes them; the packed slabs stream
/// sequentially instead.
pub fn pack_xposed_blocks(bt: &[f32], k: usize, n: usize) -> Vec<f32> {
    debug_assert!(bt.len() >= k * n);
    let nblocks = n / 8;
    let mut out = Vec::with_capacity(k * n);
    for jb in 0..nblocks {
        let j0 = jb * 8;
        for p in 0..k {
            out.extend_from_slice(&bt[p * n + j0..p * n + j0 + 8]);
        }
    }
    for j in nblocks * 8..n {
        for p in 0..k {
            out.push(bt[p * n + j]);
        }
    }
    out
}

/// Dispatched `C = A * B` with `bp` = B packed by
/// [`pack_xposed_blocks`]. Bit-identical to [`matmul_xposed_into`] on
/// the unpacked matrix — same per-element accumulation, cache-friendly
/// addresses.
pub fn matmul_xpacked_into(a: &[f32], bp: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 => avx2::matmul_xpacked_into(a, bp, c, m, k, n),
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon => neon::matmul_xpacked_into(a, bp, c, m, k, n),
        _ => scalar::matmul_xpacked_into(a, bp, c, m, k, n),
    }
}

/// Dispatched batched `C = A * B^T` over `batch` independent problems at
/// the given strides. Per-element arithmetic is identical to the
/// unbatched kernel (the batch loop only selects offsets).
#[allow(clippy::too_many_arguments)]
pub fn matmul_transb_batched(
    a: &[f32],
    a_stride: usize,
    b: &[f32],
    b_stride: usize,
    c: &mut [f32],
    c_stride: usize,
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    let tier = active_tier();
    for bi in 0..batch {
        let av = &a[bi * a_stride..];
        let bv = &b[bi * b_stride..];
        let cv = &mut c[bi * c_stride..];
        match tier {
            #[cfg(target_arch = "x86_64")]
            IsaTier::Avx2 => avx2::matmul_transb_into(av, bv, cv, m, k, n),
            #[cfg(target_arch = "aarch64")]
            IsaTier::Neon => neon::matmul_transb_into(av, bv, cv, m, k, n),
            _ => scalar::matmul_transb_into(av, bv, cv, m, k, n),
        }
    }
}

/// Dispatched row max (the max pass of the fused log-softmax+top-k; the
/// top-k insertion stays scalar on every tier because its order is the
/// contract).
pub fn row_max(row: &[f32]) -> f32 {
    if row.is_empty() {
        return f32::NEG_INFINITY;
    }
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 => avx2::row_max(row),
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon => neon::row_max(row),
        _ => scalar::row_max(row),
    }
}

/// Dispatched `Σ exp(v - max)` — the normalizer pass of the fused
/// log-softmax+top-k, lane-split by 8 like the matmuls. Every tier uses
/// the shared polynomial `exp` ([`exp_lane`] and its AVX2 mirror), not
/// libm, so the sum is bit-identical across tiers. `max` must be the
/// row's max (finite inputs, `v - max ≤ 0`).
pub fn sum_exp(row: &[f32], max: f32) -> f32 {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 => avx2::sum_exp(row, max),
        _ => scalar::sum_exp(row, max),
    }
}

/// Dispatched elementwise GELU over a buffer (the FFN activation).
/// Every tier evaluates the shared [`gelu_lane`] operation sequence —
/// polynomial `exp`, no libm — so results are bit-identical across
/// tiers, and identical to the public scalar `math::gelu`.
pub fn gelu_into(buf: &mut [f32]) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 => avx2::gelu_into(buf),
        _ => scalar::gelu_into(buf),
    }
}

/// Per-row symmetric int8 quantization: `scale = absmax / 127`, values
/// round-to-nearest clamped to `[-127, 127]`. Returns the scale (0.0
/// for an all-zero or non-finite row, with `dst` zeroed). Always
/// scalar, on every tier: rounding must not depend on dispatch.
pub fn quantize_row_i8(src: &[f32], dst: &mut [i8]) -> f32 {
    debug_assert_eq!(src.len(), dst.len());
    let mut absmax = 0.0f32;
    for &v in src {
        let a = v.abs();
        if a > absmax {
            absmax = a;
        }
    }
    if absmax == 0.0 || !absmax.is_finite() {
        dst.fill(0);
        return 0.0;
    }
    let inv = 127.0 / absmax;
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = (v * inv).round().clamp(-127.0, 127.0) as i8;
    }
    absmax / 127.0
}

/// Dispatched int8 `C = Xq * Wq^T` with f32 dequant-on-accumulate.
/// `xq`: `m x k` activations with per-row scales `xs`; `wq`: `n x k`
/// weights with per-row scales `ws`.
#[allow(clippy::too_many_arguments)]
pub fn qmatmul_transb_into(
    xq: &[i8],
    xs: &[f32],
    wq: &[i8],
    ws: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 => avx2::qmatmul_transb_into(xq, xs, wq, ws, bias, out, m, k, n),
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon => neon::qmatmul_transb_into(xq, xs, wq, ws, bias, out, m, k, n),
        _ => scalar::qmatmul_transb_into(xq, xs, wq, ws, bias, out, m, k, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn tier_knob_round_trips() {
        let prev = active_tier();
        assert_eq!(set_tier(IsaTier::Scalar), IsaTier::Scalar);
        assert_eq!(active_tier(), IsaTier::Scalar);
        // Unsupported requests clamp to scalar instead of crashing.
        let installed = set_tier(IsaTier::Neon);
        if !cfg!(target_arch = "aarch64") {
            assert_eq!(installed, IsaTier::Scalar);
        }
        set_tier(prev);
    }

    #[test]
    fn transb_and_xposed_orientations_agree_bitwise() {
        // Same projection through both weight orientations must give the
        // same bits: the scalar decode path uses transb, the batched
        // path uses xposed.
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (2, 7, 5), (3, 16, 8), (4, 19, 13)] {
            let a = fill(1, m * k);
            let w = fill(2, n * k); // n x k, transb orientation
            let mut wt = vec![0.0f32; k * n];
            for r in 0..n {
                for p in 0..k {
                    wt[p * n + r] = w[r * k + p];
                }
            }
            let mut c1 = vec![0.0f32; m * n];
            let mut c2 = vec![0.0f32; m * n];
            scalar::matmul_transb_into(&a, &w, &mut c1, m, k, n);
            scalar::matmul_xposed_into(&a, &wt, &mut c2, m, k, n);
            for (x, y) in c1.iter().zip(&c2) {
                assert_eq!(x.to_bits(), y.to_bits(), "shape ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn quantize_round_trips_within_bound() {
        let src = fill(7, 33);
        let mut q = vec![0i8; 33];
        let scale = quantize_row_i8(&src, &mut q);
        assert!(scale > 0.0);
        for (&v, &qq) in src.iter().zip(&q) {
            assert!((v - qq as f32 * scale).abs() <= scale * 0.5 + 1e-6);
        }
        let zeros = vec![0.0f32; 8];
        let mut qz = vec![1i8; 8];
        assert_eq!(quantize_row_i8(&zeros, &mut qz), 0.0);
        assert!(qz.iter().all(|&v| v == 0));
    }
}
