//! Runtime-dispatched SIMD kernel layer.
//!
//! Every hot kernel in this crate (`matmul_transb_into`,
//! `matmul_xposed_into`, `matmul_transb_batched`, the fused
//! log-softmax+top-k max and exp-sum passes, the attention core
//! (`attn_scores_into` / `softmax_into` / `attn_weighted_sum_into`),
//! `layer_norm_into`, activation quantization (`quantize_row_i8`), and
//! the int8 `qmatmul_transb_into`) routes through this module. An ISA
//! tier is selected once at startup — VNNI on x86-64 hosts with
//! AVX-VNNI or AVX512-VNNI+VL, else AVX2, NEON on aarch64, scalar
//! otherwise — and can be overridden with the `SLADE_KERNEL_ISA`
//! environment variable (`auto` | `scalar` | `avx2` | `neon` | `vnni`;
//! an unsupported known tier degrades with a one-line warning — `vnni`
//! to AVX2 when available, otherwise scalar — and an unrecognized value
//! warns and uses the detected tier) or in-process via [`set_tier`]
//! (used by benches and property tests to compare tiers). The request
//! outcome is queryable via [`tier_resolution`] for stats/metrics
//! reporting.
//!
//! # Bit-identity contract
//!
//! All f32 tiers of a kernel produce **bit-identical** output. This is
//! load-bearing: the engine's `decode_scalar ≡ decode_batch` equivalence
//! and the serving runtime's `runtime ≡ sequential` property both assume
//! logits do not depend on which code path (or batch composition)
//! produced them. The shared accumulation semantics, per output element:
//!
//! - the reduction index `p` is split into 8 lanes by `p mod 8`;
//! - each lane accumulates its products in ascending `p` order
//!   (`lane += a*b`, a rounded multiply followed by a rounded add — no
//!   FMA anywhere, so scalar and vector rounding agree);
//! - a `k % 8` tail touches **only** lanes `0..k % 8` (never adding a
//!   `+0.0` to an untouched lane, which would flip a `-0.0` partial);
//! - lanes reduce through the fixed binary tree
//!   `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`, the order an AVX2
//!   128-bit-split horizontal add performs.
//!
//! Both matmul orientations (`transb`: B rows contiguous over `k`;
//! `xposed`: B transposed, columns contiguous) implement these exact
//! per-element semantics, so projecting through a weight matrix yields
//! the same bits regardless of orientation — the scalar decode path
//! (transb) and the batched decode path (xposed) stay interchangeable.
//!
//! The int8 kernels accumulate in exact i32 arithmetic (products are
//! bounded by 127², far from overflow for any model dimension here), so
//! they are trivially bit-identical across tiers — including the VNNI
//! tier, whose `VPDPBUSD` u8×i8 dot is made exact for signed i8×i8 by
//! the abs/sign trick (see [`vnni`]). Activation quantization
//! (`quantize_row_i8`) is dispatched too; its vector tiers reproduce
//! the scalar routine bit-for-bit because every step is either exact
//! (abs/max/clamp/low-byte cast) or an identically-rounded IEEE op —
//! in particular, rounding is round-to-nearest-even on every tier,
//! since that is the only mode `VROUNDPS`/`FRINTN` and the scalar
//! `round_ties_even` all share. Rows containing NaN are out of
//! contract (max-propagation differs between lane orders); all-finite
//! rows, including ±inf, denormals and ±0, agree bitwise.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Instruction-set tier a kernel call executes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum IsaTier {
    /// Portable scalar reference kernels (auto-vectorized at the
    /// target's baseline, e.g. SSE2 on x86-64).
    Scalar = 0,
    /// Explicit 256-bit AVX2 intrinsics (x86-64).
    Avx2 = 1,
    /// Explicit 128-bit NEON intrinsics, paired to emulate 8 lanes
    /// (aarch64).
    Neon = 2,
    /// AVX2 plus `VPDPBUSD` (AVX-VNNI or AVX512-VNNI+VL) for the int8
    /// matmul; all f32 kernels run the AVX2 implementations (x86-64).
    Vnni = 3,
}

impl IsaTier {
    /// Stable lowercase name for metrics and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            IsaTier::Scalar => "scalar",
            IsaTier::Avx2 => "avx2",
            IsaTier::Neon => "neon",
            IsaTier::Vnni => "vnni",
        }
    }

    fn from_u8(v: u8) -> IsaTier {
        match v {
            1 => IsaTier::Avx2,
            2 => IsaTier::Neon,
            3 => IsaTier::Vnni,
            _ => IsaTier::Scalar,
        }
    }
}

/// Sentinel meaning "tier not yet resolved".
const TIER_UNSET: u8 = u8::MAX;

/// Resolved tier; initialized lazily on first kernel call.
static ACTIVE: AtomicU8 = AtomicU8::new(TIER_UNSET);

/// The best tier this host supports, by `std::arch` feature detection.
pub fn detected_tier() -> IsaTier {
    #[cfg(target_arch = "x86_64")]
    {
        if tier_supported(IsaTier::Vnni) {
            return IsaTier::Vnni;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return IsaTier::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is architecturally mandatory on aarch64.
        return IsaTier::Neon;
    }
    #[allow(unreachable_code)]
    IsaTier::Scalar
}

/// Whether this host can actually execute `tier`. Public so benches and
/// tests can gate tier-vs-tier comparisons on what the host offers.
pub fn tier_supported(tier: IsaTier) -> bool {
    match tier {
        IsaTier::Scalar => true,
        IsaTier::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                std::arch::is_x86_feature_detected!("avx2")
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                false
            }
        }
        IsaTier::Neon => cfg!(target_arch = "aarch64"),
        IsaTier::Vnni => {
            #[cfg(target_arch = "x86_64")]
            {
                std::arch::is_x86_feature_detected!("avx2")
                    && (std::arch::is_x86_feature_detected!("avxvnni")
                        || (std::arch::is_x86_feature_detected!("avx512vnni")
                            && std::arch::is_x86_feature_detected!("avx512vl")))
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                false
            }
        }
    }
}

/// How startup tier resolution handled the `SLADE_KERNEL_ISA` request,
/// for effective-vs-requested reporting in `slade-cli stats` and the
/// serve metrics snapshot.
#[derive(Debug, Clone)]
pub struct TierResolution {
    /// Trimmed, lowercased request, if the variable was set non-empty.
    pub requested: Option<String>,
    /// The request named a known tier (or `auto`).
    pub recognized: bool,
    /// The effective tier is the one asked for (vacuously true when
    /// unset or `auto`).
    pub satisfied: bool,
}

impl TierResolution {
    fn default_auto() -> TierResolution {
        TierResolution { requested: None, recognized: true, satisfied: true }
    }
}

static RESOLUTION: OnceLock<TierResolution> = OnceLock::new();

const VALID_TIERS: &str = "auto, scalar, avx2, neon, vnni";

/// Resolve the startup tier: `SLADE_KERNEL_ISA` override first, then
/// feature detection. An unsupported known tier degrades (vnni → avx2
/// when available, else scalar; avx2/neon → scalar) and an unrecognized
/// value uses the detected tier; both print a one-line warning naming
/// the valid tiers instead of falling back silently.
fn resolve_tier() -> IsaTier {
    let raw = std::env::var("SLADE_KERNEL_ISA").unwrap_or_default();
    let req = raw.trim().to_ascii_lowercase();
    let (tier, resolution) = match req.as_str() {
        "" | "auto" => (detected_tier(), TierResolution::default_auto()),
        "scalar" => (
            IsaTier::Scalar,
            TierResolution { requested: Some(req.clone()), recognized: true, satisfied: true },
        ),
        "avx2" | "neon" | "vnni" => {
            let want = match req.as_str() {
                "avx2" => IsaTier::Avx2,
                "neon" => IsaTier::Neon,
                _ => IsaTier::Vnni,
            };
            if tier_supported(want) {
                (
                    want,
                    TierResolution {
                        requested: Some(req.clone()),
                        recognized: true,
                        satisfied: true,
                    },
                )
            } else {
                let fallback = if want == IsaTier::Vnni && tier_supported(IsaTier::Avx2) {
                    IsaTier::Avx2
                } else {
                    IsaTier::Scalar
                };
                eprintln!(
                    "slade: SLADE_KERNEL_ISA={req} requested but this host cannot execute \
                     it; using {} (valid tiers: {VALID_TIERS})",
                    fallback.name()
                );
                (
                    fallback,
                    TierResolution {
                        requested: Some(req.clone()),
                        recognized: true,
                        satisfied: false,
                    },
                )
            }
        }
        _ => {
            let detected = detected_tier();
            eprintln!(
                "slade: unknown SLADE_KERNEL_ISA value '{req}' (valid tiers: {VALID_TIERS}); \
                 using detected tier {}",
                detected.name()
            );
            (
                detected,
                TierResolution {
                    requested: Some(req.clone()),
                    recognized: false,
                    satisfied: false,
                },
            )
        }
    };
    let _ = RESOLUTION.set(resolution);
    tier
}

/// The outcome of `SLADE_KERNEL_ISA` resolution (forcing resolution if
/// it has not happened yet). [`set_tier`] does not alter this — it
/// reports the startup request, while [`active_tier`] reports what
/// dispatch currently uses.
pub fn tier_resolution() -> TierResolution {
    let _ = active_tier();
    RESOLUTION.get().cloned().unwrap_or_else(TierResolution::default_auto)
}

/// Human-readable effective-vs-requested tier, e.g. `avx2`,
/// `avx2 (requested vnni: unsupported)`, or
/// `vnni (requested avx512: unknown)`.
pub fn tier_status() -> String {
    let res = tier_resolution();
    let effective = active_tier().name();
    match res.requested {
        Some(req) if !res.recognized => format!("{effective} (requested {req}: unknown)"),
        Some(req) if !res.satisfied => format!("{effective} (requested {req}: unsupported)"),
        _ => effective.to_string(),
    }
}

/// The tier kernel dispatch currently uses (resolving it on first call).
pub fn active_tier() -> IsaTier {
    let v = ACTIVE.load(Ordering::Relaxed);
    if v != TIER_UNSET {
        return IsaTier::from_u8(v);
    }
    let tier = resolve_tier();
    ACTIVE.store(tier as u8, Ordering::Relaxed);
    tier
}

/// Force a dispatch tier in-process (benches and tests comparing tiers).
/// Requests the host cannot execute clamp to scalar; returns the tier
/// actually installed.
pub fn set_tier(tier: IsaTier) -> IsaTier {
    let t = if tier_supported(tier) { tier } else { IsaTier::Scalar };
    ACTIVE.store(t as u8, Ordering::Relaxed);
    t
}

/// Lane count of the shared accumulation semantics (see module docs).
pub const LANES: usize = 8;

/// Fixed binary-tree reduction of the 8 lane partials — the order an
/// AVX2 split-and-add horizontal reduce performs.
#[inline(always)]
fn reduce8(l: &[f32; 8]) -> f32 {
    ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]))
}

/// 4-way horizontal reduce of four i32 matmul accumulators: two
/// VPHADDD levels and a 128-bit fold yield `[Σa0, Σa1, Σa2, Σa3]`.
/// Shared by the AVX2 and VNNI int8 kernels; the arithmetic is exact
/// integer, so reduction order cannot affect the result.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hsum4_epi32(
    a0: std::arch::x86_64::__m256i,
    a1: std::arch::x86_64::__m256i,
    a2: std::arch::x86_64::__m256i,
    a3: std::arch::x86_64::__m256i,
) -> std::arch::x86_64::__m128i {
    use std::arch::x86_64::*;
    let t01 = _mm256_hadd_epi32(a0, a1);
    let t23 = _mm256_hadd_epi32(a2, a3);
    let t = _mm256_hadd_epi32(t01, t23);
    _mm_add_epi32(_mm256_castsi256_si128(t), _mm256_extracti128_si256(t, 1))
}

/// Dequantizes four adjacent int8 dot products at once: per lane,
/// `cvt(sum) * (x_scale * ws[j]) + bias[j]` — the identical operation
/// sequence the scalar tier applies per element (`i32 → f32` conversion
/// is exact, the two multiplies and the add are each one rounded IEEE
/// op), so the 4-wide form is bit-identical to four scalar dequants.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn dequant4(
    sums: std::arch::x86_64::__m128i,
    x_scale: f32,
    ws: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    i: usize,
    j: usize,
    n: usize,
) {
    use std::arch::x86_64::*;
    let sf = _mm_cvtepi32_ps(sums);
    let sc = _mm_mul_ps(_mm_set1_ps(x_scale), _mm_loadu_ps(ws.as_ptr().add(j)));
    let deq = _mm_mul_ps(sf, sc);
    let res = match bias {
        Some(b) => _mm_add_ps(deq, _mm_loadu_ps(b.as_ptr().add(j))),
        None => deq,
    };
    _mm_storeu_ps(out.as_mut_ptr().add(i * n + j), res);
}

/// Pairwise max with VMAXPS semantics: `if a > b { a } else { b }`
/// (ties and NaN resolve to `b`), so scalar and vector max passes agree
/// bit-for-bit.
#[inline(always)]
fn vmax(a: f32, b: f32) -> f32 {
    if a > b {
        a
    } else {
        b
    }
}

/// Elementwise `e^x` shared by every tier of the `sum_exp` kernel, for
/// finite `x ≤ 0` (softmax operands are `v - max`). The operation
/// sequence — `exp2`-style range reduction with round-to-nearest-even, a
/// degree-6 Horner for `e^r` on `r ∈ [-ln2/2, ln2/2]`, and an
/// exponent-field scale — is mirrored instruction-for-instruction by the
/// AVX2 lane implementation, so tiers agree bit-for-bit (every step is an
/// exactly-rounded IEEE op; no FMA, no libm). Inputs below the normal
/// range flush to zero. Relative error ≤ ~4e-8, within a ulp of libm.
#[inline(always)]
fn exp_lane(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    const LN2: f32 = std::f32::consts::LN_2;
    let y = x * LOG2E;
    let n = y.round_ties_even();
    let r = (y - n) * LN2;
    let mut p = 1.0 / 720.0;
    p = p * r + 1.0 / 120.0;
    p = p * r + 1.0 / 24.0;
    p = p * r + 1.0 / 6.0;
    p = p * r + 0.5;
    p = p * r + 1.0;
    p = p * r + 1.0;
    if x < -87.0 {
        return 0.0;
    }
    // n ∈ [-126, 0] here, so the biased exponent stays normal.
    let scale = f32::from_bits(((n as i32 + 127) as u32) << 23);
    p * scale
}

/// Elementwise GELU (tanh approximation, as BART uses) shared by every
/// tier. `tanh(u)` is evaluated as `sign(u) · (1 - e) / (1 + e)` with
/// `e = exp(-2|u|)` through [`exp_lane`], so — like `exp_lane` — the
/// AVX2 lane implementation mirrors the operation sequence exactly and
/// tiers agree bit-for-bit. This is also the body of the public
/// `math::gelu`, so the training path and the dispatched decode path
/// compute the same function.
#[inline(always)]
pub(crate) fn gelu_lane(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    const A: f32 = 0.044715;
    let u = C * (x + A * x * x * x);
    let au = f32::from_bits(u.to_bits() & 0x7fff_ffff);
    let e = exp_lane(-(au + au));
    let t = (1.0 - e) / (1.0 + e);
    let t = f32::from_bits(t.to_bits() | (u.to_bits() & 0x8000_0000));
    0.5 * x * (1.0 + t)
}

/// Canonical scalar reference kernels. Every other tier must reproduce
/// these bit-for-bit (f32) or exactly (int8). Written so LLVM can
/// auto-vectorize the lane loops at the target baseline.
pub mod scalar {
    use super::{reduce8, vmax};

    /// Lane-split dot product of two equal-length contiguous slices.
    #[inline]
    pub(crate) fn dot8(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut lanes = [0.0f32; 8];
        let chunks = a.len() / 8;
        for (av, bv) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
            for ((l, &x), &y) in lanes.iter_mut().zip(av).zip(bv) {
                *l += x * y;
            }
        }
        let base = chunks * 8;
        for ((l, &x), &y) in lanes.iter_mut().zip(&a[base..]).zip(&b[base..]) {
            *l += x * y;
        }
        reduce8(&lanes)
    }

    /// Lane-split dot of row `ar` against column `j` of `bt` (`bt` is
    /// `k x n`, so the column is strided by `n`). Shared by the xposed
    /// column-tail of every tier.
    #[inline]
    pub(crate) fn dot8_col(ar: &[f32], bt: &[f32], n: usize, j: usize) -> f32 {
        let mut lanes = [0.0f32; 8];
        for (p, &av) in ar.iter().enumerate() {
            lanes[p & 7] += av * bt[p * n + j];
        }
        reduce8(&lanes)
    }

    /// `C = A * B^T` into `c` — scalar tier.
    /// `a` is `m x k`, `b` is `n x k` (rows contiguous over `k`),
    /// `c` is `m x n`.
    pub fn matmul_transb_into(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        for i in 0..m {
            let ar = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n..(i + 1) * n];
            for (j, cv) in crow.iter_mut().enumerate() {
                *cv = dot8(ar, &b[j * k..(j + 1) * k]);
            }
        }
    }

    /// `C = A * B` into `c` where `bt` is B pre-transposed to `k x n`
    /// (output columns contiguous) — scalar tier. Accumulates an
    /// 8-lane x 8-column tile so the column loop auto-vectorizes.
    pub fn matmul_xposed_into(
        a: &[f32],
        bt: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        let nblocks = n / 8;
        for i in 0..m {
            let ar = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n..(i + 1) * n];
            for jb in 0..nblocks {
                let j0 = jb * 8;
                // acc[lane][col]: lane = p mod 8, col within the j-block.
                let mut acc = [[0.0f32; 8]; 8];
                for (p, &av) in ar.iter().enumerate() {
                    let brow = &bt[p * n + j0..p * n + j0 + 8];
                    for (q, &bv) in acc[p & 7].iter_mut().zip(brow) {
                        *q += av * bv;
                    }
                }
                for (col, cv) in crow[j0..j0 + 8].iter_mut().enumerate() {
                    let lanes = [
                        acc[0][col],
                        acc[1][col],
                        acc[2][col],
                        acc[3][col],
                        acc[4][col],
                        acc[5][col],
                        acc[6][col],
                        acc[7][col],
                    ];
                    *cv = reduce8(&lanes);
                }
            }
            for (j, cv) in crow.iter_mut().enumerate().skip(nblocks * 8) {
                *cv = dot8_col(ar, bt, n, j);
            }
        }
    }

    /// `C = A * B` with `bp` = B packed by [`super::pack_xposed_blocks`]
    /// — scalar tier. Identical per-element accumulation to
    /// [`matmul_xposed_into`]; only the addresses the reduction walks
    /// differ (sequential slabs instead of `n`-strided columns).
    pub fn matmul_xpacked_into(
        a: &[f32],
        bp: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        let nblocks = n / 8;
        let tail_base = nblocks * k * 8;
        for i in 0..m {
            let ar = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n..(i + 1) * n];
            for jb in 0..nblocks {
                let slab = &bp[jb * k * 8..(jb + 1) * k * 8];
                let mut acc = [[0.0f32; 8]; 8];
                for (p, &av) in ar.iter().enumerate() {
                    let brow = &slab[p * 8..(p + 1) * 8];
                    for (q, &bv) in acc[p & 7].iter_mut().zip(brow) {
                        *q += av * bv;
                    }
                }
                for (col, cv) in crow[jb * 8..(jb + 1) * 8].iter_mut().enumerate() {
                    let lanes = [
                        acc[0][col],
                        acc[1][col],
                        acc[2][col],
                        acc[3][col],
                        acc[4][col],
                        acc[5][col],
                        acc[6][col],
                        acc[7][col],
                    ];
                    *cv = reduce8(&lanes);
                }
            }
            for (jt, cv) in crow.iter_mut().skip(nblocks * 8).enumerate() {
                // Tail columns are stored contiguously, so the plain
                // lane-split dot applies (same semantics as dot8_col).
                *cv = dot8(ar, &bp[tail_base + jt * k..tail_base + (jt + 1) * k]);
            }
        }
    }

    /// Lane-split `Σ exp(v - max)` (the log-softmax normalizer) — scalar
    /// tier. Uses the shared polynomial [`super::exp_lane`] on every
    /// tier, so the sum is bit-identical regardless of dispatch.
    pub fn sum_exp(row: &[f32], max: f32) -> f32 {
        let mut lanes = [0.0f32; 8];
        for (p, &v) in row.iter().enumerate() {
            lanes[p & 7] += super::exp_lane(v - max);
        }
        reduce8(&lanes)
    }

    /// Elementwise GELU over a buffer — scalar tier. Purely elementwise
    /// (no reduction), so no lane split is needed for cross-tier
    /// bit-identity: each output depends only on its own input through
    /// the shared [`super::gelu_lane`] operation sequence.
    pub fn gelu_into(buf: &mut [f32]) {
        for v in buf {
            *v = super::gelu_lane(*v);
        }
    }

    /// Row max with VMAXPS-compatible lane semantics — scalar tier.
    pub fn row_max(row: &[f32]) -> f32 {
        let mut lanes = [f32::NEG_INFINITY; 8];
        for (p, &v) in row.iter().enumerate() {
            let l = p & 7;
            lanes[l] = vmax(lanes[l], v);
        }
        vmax(
            vmax(vmax(lanes[0], lanes[4]), vmax(lanes[2], lanes[6])),
            vmax(vmax(lanes[1], lanes[5]), vmax(lanes[3], lanes[7])),
        )
    }

    /// Exact i8 x i8 -> i32 dot product — scalar tier.
    #[inline]
    pub(crate) fn qdot(x: &[i8], w: &[i8]) -> i32 {
        let mut acc = 0i32;
        for (&xv, &wv) in x.iter().zip(w) {
            acc += xv as i32 * wv as i32;
        }
        acc
    }

    /// Int8 `C = Xq * Wq^T` with f32 dequant-on-accumulate — scalar
    /// tier. `xq` is `m x k` with per-row scales `xs`, `wq` is `n x k`
    /// with per-row scales `ws`; `out[i,j] = dot_i32 * (xs[i]*ws[j]) +
    /// bias[j]`.
    #[allow(clippy::too_many_arguments)]
    pub fn qmatmul_transb_into(
        xq: &[i8],
        xs: &[f32],
        wq: &[i8],
        ws: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        for i in 0..m {
            let xr = &xq[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (j, ov) in orow.iter_mut().enumerate() {
                let acc = qdot(xr, &wq[j * k..(j + 1) * k]);
                let deq = acc as f32 * (xs[i] * ws[j]);
                *ov = match bias {
                    Some(b) => deq + b[j],
                    None => deq,
                };
            }
        }
    }

    /// Per-row symmetric int8 quantization — scalar tier (the reference
    /// the vector tiers reproduce bit-for-bit; see
    /// [`super::quantize_row_i8`]). Rounding is round-to-nearest-even —
    /// the one mode `VROUNDPS`, `FRINTN`, and `round_ties_even` share.
    pub fn quantize_row_i8(src: &[f32], dst: &mut [i8]) -> f32 {
        debug_assert_eq!(src.len(), dst.len());
        let mut absmax = 0.0f32;
        for &v in src {
            let a = v.abs();
            if a > absmax {
                absmax = a;
            }
        }
        if absmax == 0.0 || !absmax.is_finite() {
            dst.fill(0);
            return 0.0;
        }
        // For a denormal absmax this overflows to +inf; the clamp and
        // the NaN→0 cast below keep the outputs defined, and the vector
        // tiers mirror both (constant-first min/max propagate NaN, the
        // low-byte extraction of the NaN convert pattern is 0).
        let inv = 127.0 / absmax;
        for (d, &v) in dst.iter_mut().zip(src) {
            *d = (v * inv).round_ties_even().clamp(-127.0, 127.0) as i8;
        }
        absmax / 127.0
    }

    /// QK^T score row — scalar tier: `scores[si] = dot8(q, key_si) *
    /// scale` where key row `si` starts at `keys[si * stride]` and runs
    /// `q.len()` elements. The dot is the shared lane-split-by-8
    /// reduction; the scale multiply is a single rounded op applied
    /// after the tree reduce on every tier.
    pub fn attn_scores_into(
        q: &[f32],
        keys: &[f32],
        stride: usize,
        scale: f32,
        scores: &mut [f32],
    ) {
        let dh = q.len();
        for (si, sv) in scores.iter_mut().enumerate() {
            *sv = dot8(q, &keys[si * stride..si * stride + dh]) * scale;
        }
    }

    /// In-place softmax over one row — scalar tier: VMAXPS-semantics
    /// max, the shared polynomial [`super::exp_lane`] per element, a
    /// lane-split-by-8 sum, and a `1 / sum.max(1e-12)` normalize.
    /// `-inf` entries (masked attention slots) exp to exactly `+0.0`.
    pub fn softmax_into(row: &mut [f32]) {
        let max = row_max(row);
        let mut lanes = [0.0f32; 8];
        for (p, v) in row.iter_mut().enumerate() {
            let e = super::exp_lane(*v - max);
            *v = e;
            lanes[p & 7] += e;
        }
        let sum = reduce8(&lanes);
        let inv = 1.0 / sum.max(1e-12);
        for v in row.iter_mut() {
            *v *= inv;
        }
    }

    /// Softmax-weighted V accumulation — scalar tier:
    /// `ctx[j] += Σ_si probs[si] * values[si * stride + j]` with `si`
    /// ascending. Zero weights skip the whole row on every tier (a
    /// `+0.0 * v` add could flip a `-0.0` partial). Purely elementwise
    /// over `j`, so vector tiers are bit-identical by construction.
    pub fn attn_weighted_sum_into(
        probs: &[f32],
        values: &[f32],
        stride: usize,
        ctx: &mut [f32],
    ) {
        let dh = ctx.len();
        for (si, &w) in probs.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let vrow = &values[si * stride..si * stride + dh];
            for (c, &v) in ctx.iter_mut().zip(vrow) {
                *c += w * v;
            }
        }
    }

    /// One layer-norm row — scalar tier: lane-split-by-8 sums for mean
    /// and variance, `rstd = 1 / sqrt(var + 1e-5)` (every op
    /// exactly-rounded IEEE, so tiers agree), then the elementwise
    /// `gamma * (x - mean) * rstd + beta` in exactly that association.
    /// Returns `(mean, rstd)` for the training path's caches.
    pub fn layer_norm_row_into(
        row: &[f32],
        gamma: &[f32],
        beta: &[f32],
        out: &mut [f32],
    ) -> (f32, f32) {
        let d = row.len();
        let mut lanes = [0.0f32; 8];
        for (p, &v) in row.iter().enumerate() {
            lanes[p & 7] += v;
        }
        let mean = reduce8(&lanes) / d as f32;
        let mut vlanes = [0.0f32; 8];
        for (p, &v) in row.iter().enumerate() {
            let dv = v - mean;
            vlanes[p & 7] += dv * dv;
        }
        let var = reduce8(&vlanes) / d as f32;
        let rstd = 1.0 / (var + 1e-5).sqrt();
        for (j, (o, &v)) in out.iter_mut().zip(row).enumerate() {
            *o = gamma[j] * (v - mean) * rstd + beta[j];
        }
        (mean, rstd)
    }
}

/// AVX2 tier: 256-bit kernels bit-identical to [`scalar`]. Safe
/// wrappers assert AVX2 support before entering `target_feature` code.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use super::reduce8;
    use super::scalar::{dot8_col, qdot};
    use std::arch::x86_64::*;

    #[inline]
    fn assert_avx2() {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "AVX2 kernels called on a host without AVX2"
        );
    }

    /// `C = A * B^T` into `c` — AVX2 tier (see [`scalar::matmul_transb_into`]).
    pub fn matmul_transb_into(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        assert!(a.len() >= m * k && b.len() >= n * k && c.len() >= m * n);
        assert_avx2();
        unsafe { transb_avx2(a, b, c, m, k, n) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn transb_avx2(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let chunks = k / 8;
        let tail = k % 8;
        let base = chunks * 8;
        for i in 0..m {
            let ar = a.as_ptr().add(i * k);
            // Four output columns at a time: each keeps its own lane
            // accumulator (so per-element accumulation is unchanged),
            // and the four independent add chains hide vaddps latency
            // that a single chain would expose.
            let mut j = 0usize;
            while j + 4 <= n {
                let b0 = b.as_ptr().add(j * k);
                let b1 = b.as_ptr().add((j + 1) * k);
                let b2 = b.as_ptr().add((j + 2) * k);
                let b3 = b.as_ptr().add((j + 3) * k);
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                let mut acc2 = _mm256_setzero_ps();
                let mut acc3 = _mm256_setzero_ps();
                for ch in 0..chunks {
                    let av = _mm256_loadu_ps(ar.add(ch * 8));
                    // mul + add (no FMA): rounding must match scalar.
                    acc0 =
                        _mm256_add_ps(acc0, _mm256_mul_ps(av, _mm256_loadu_ps(b0.add(ch * 8))));
                    acc1 =
                        _mm256_add_ps(acc1, _mm256_mul_ps(av, _mm256_loadu_ps(b1.add(ch * 8))));
                    acc2 =
                        _mm256_add_ps(acc2, _mm256_mul_ps(av, _mm256_loadu_ps(b2.add(ch * 8))));
                    acc3 =
                        _mm256_add_ps(acc3, _mm256_mul_ps(av, _mm256_loadu_ps(b3.add(ch * 8))));
                }
                for (col, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
                    let mut lanes = [0.0f32; 8];
                    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
                    let br = b.as_ptr().add((j + col) * k);
                    for (l, lane) in lanes.iter_mut().enumerate().take(tail) {
                        *lane += *ar.add(base + l) * *br.add(base + l);
                    }
                    c[i * n + j + col] = reduce8(&lanes);
                }
                j += 4;
            }
            while j < n {
                let br = b.as_ptr().add(j * k);
                let mut acc = _mm256_setzero_ps();
                for ch in 0..chunks {
                    let av = _mm256_loadu_ps(ar.add(ch * 8));
                    let bv = _mm256_loadu_ps(br.add(ch * 8));
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(av, bv));
                }
                let mut lanes = [0.0f32; 8];
                _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
                for (l, lane) in lanes.iter_mut().enumerate().take(tail) {
                    *lane += *ar.add(base + l) * *br.add(base + l);
                }
                c[i * n + j] = reduce8(&lanes);
                j += 1;
            }
        }
    }

    /// `C = A * B` with pre-transposed `bt` — AVX2 tier (see
    /// [`scalar::matmul_xposed_into`]).
    pub fn matmul_xposed_into(
        a: &[f32],
        bt: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        assert!(a.len() >= m * k && bt.len() >= k * n && c.len() >= m * n);
        assert_avx2();
        unsafe { xposed_avx2(a, bt, c, m, k, n) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn xposed_avx2(a: &[f32], bt: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let nblocks = n / 8;
        let chunks = k / 8;
        let ktail = k % 8;
        let base = chunks * 8;
        // j-block outer so the `k x 8` slab of `bt` this block reads
        // stays cache-hot across all `m` rows of `a` (the loop
        // interchange reorders whole output elements, never the
        // accumulation inside one, so bit-identity is unaffected).
        for jb in 0..nblocks {
            let j0 = jb * 8;
            for i in 0..m {
                let ar = a.as_ptr().add(i * k);
                // One named accumulator per lane (p mod 8): a dynamic
                // `acc[p & 7]` would force the array into memory; named
                // registers keep the whole rotation in ymm.
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                let mut acc2 = _mm256_setzero_ps();
                let mut acc3 = _mm256_setzero_ps();
                let mut acc4 = _mm256_setzero_ps();
                let mut acc5 = _mm256_setzero_ps();
                let mut acc6 = _mm256_setzero_ps();
                let mut acc7 = _mm256_setzero_ps();
                for ch in 0..chunks {
                    let p = ch * 8;
                    let col = bt.as_ptr().add(p * n + j0);
                    let av = ar.add(p);
                    acc0 = _mm256_add_ps(
                        acc0,
                        _mm256_mul_ps(_mm256_set1_ps(*av), _mm256_loadu_ps(col)),
                    );
                    acc1 = _mm256_add_ps(
                        acc1,
                        _mm256_mul_ps(_mm256_set1_ps(*av.add(1)), _mm256_loadu_ps(col.add(n))),
                    );
                    acc2 = _mm256_add_ps(
                        acc2,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(2)),
                            _mm256_loadu_ps(col.add(2 * n)),
                        ),
                    );
                    acc3 = _mm256_add_ps(
                        acc3,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(3)),
                            _mm256_loadu_ps(col.add(3 * n)),
                        ),
                    );
                    acc4 = _mm256_add_ps(
                        acc4,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(4)),
                            _mm256_loadu_ps(col.add(4 * n)),
                        ),
                    );
                    acc5 = _mm256_add_ps(
                        acc5,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(5)),
                            _mm256_loadu_ps(col.add(5 * n)),
                        ),
                    );
                    acc6 = _mm256_add_ps(
                        acc6,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(6)),
                            _mm256_loadu_ps(col.add(6 * n)),
                        ),
                    );
                    acc7 = _mm256_add_ps(
                        acc7,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(7)),
                            _mm256_loadu_ps(col.add(7 * n)),
                        ),
                    );
                }
                // k tail: ascending p into lanes 0..ktail only.
                let col = bt.as_ptr().add(base * n + j0);
                let av = ar.add(base);
                if ktail > 0 {
                    acc0 = _mm256_add_ps(
                        acc0,
                        _mm256_mul_ps(_mm256_set1_ps(*av), _mm256_loadu_ps(col)),
                    );
                }
                if ktail > 1 {
                    acc1 = _mm256_add_ps(
                        acc1,
                        _mm256_mul_ps(_mm256_set1_ps(*av.add(1)), _mm256_loadu_ps(col.add(n))),
                    );
                }
                if ktail > 2 {
                    acc2 = _mm256_add_ps(
                        acc2,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(2)),
                            _mm256_loadu_ps(col.add(2 * n)),
                        ),
                    );
                }
                if ktail > 3 {
                    acc3 = _mm256_add_ps(
                        acc3,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(3)),
                            _mm256_loadu_ps(col.add(3 * n)),
                        ),
                    );
                }
                if ktail > 4 {
                    acc4 = _mm256_add_ps(
                        acc4,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(4)),
                            _mm256_loadu_ps(col.add(4 * n)),
                        ),
                    );
                }
                if ktail > 5 {
                    acc5 = _mm256_add_ps(
                        acc5,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(5)),
                            _mm256_loadu_ps(col.add(5 * n)),
                        ),
                    );
                }
                if ktail > 6 {
                    acc6 = _mm256_add_ps(
                        acc6,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(6)),
                            _mm256_loadu_ps(col.add(6 * n)),
                        ),
                    );
                }
                // Element-wise tree over the 8 lane vectors — the same
                // tree reduce8 performs per element.
                let s04 = _mm256_add_ps(acc0, acc4);
                let s26 = _mm256_add_ps(acc2, acc6);
                let s15 = _mm256_add_ps(acc1, acc5);
                let s37 = _mm256_add_ps(acc3, acc7);
                let even = _mm256_add_ps(s04, s26);
                let odd = _mm256_add_ps(s15, s37);
                _mm256_storeu_ps(c.as_mut_ptr().add(i * n + j0), _mm256_add_ps(even, odd));
            }
        }
        for i in 0..m {
            let ar = &a[i * k..(i + 1) * k];
            for j in nblocks * 8..n {
                c[i * n + j] = dot8_col(ar, bt, n, j);
            }
        }
    }

    /// `C = A * B` with `bp` packed by [`super::pack_xposed_blocks`] —
    /// AVX2 tier (see [`scalar::matmul_xpacked_into`]).
    pub fn matmul_xpacked_into(
        a: &[f32],
        bp: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        assert!(a.len() >= m * k && bp.len() >= k * n && c.len() >= m * n);
        assert_avx2();
        unsafe { xpacked_avx2(a, bp, c, m, k, n) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn xpacked_avx2(a: &[f32], bp: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let nblocks = n / 8;
        let chunks = k / 8;
        let ktail = k % 8;
        let base = chunks * 8;
        // j-block outer: each block's 2 KiB slab is read sequentially
        // and stays L1-hot across all `m` rows of `a`.
        for jb in 0..nblocks {
            let slab = bp.as_ptr().add(jb * k * 8);
            for i in 0..m {
                let ar = a.as_ptr().add(i * k);
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                let mut acc2 = _mm256_setzero_ps();
                let mut acc3 = _mm256_setzero_ps();
                let mut acc4 = _mm256_setzero_ps();
                let mut acc5 = _mm256_setzero_ps();
                let mut acc6 = _mm256_setzero_ps();
                let mut acc7 = _mm256_setzero_ps();
                for ch in 0..chunks {
                    let p = ch * 8;
                    let av = ar.add(p);
                    let brow = slab.add(p * 8);
                    acc0 = _mm256_add_ps(
                        acc0,
                        _mm256_mul_ps(_mm256_set1_ps(*av), _mm256_loadu_ps(brow)),
                    );
                    acc1 = _mm256_add_ps(
                        acc1,
                        _mm256_mul_ps(_mm256_set1_ps(*av.add(1)), _mm256_loadu_ps(brow.add(8))),
                    );
                    acc2 = _mm256_add_ps(
                        acc2,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(2)),
                            _mm256_loadu_ps(brow.add(16)),
                        ),
                    );
                    acc3 = _mm256_add_ps(
                        acc3,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(3)),
                            _mm256_loadu_ps(brow.add(24)),
                        ),
                    );
                    acc4 = _mm256_add_ps(
                        acc4,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(4)),
                            _mm256_loadu_ps(brow.add(32)),
                        ),
                    );
                    acc5 = _mm256_add_ps(
                        acc5,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(5)),
                            _mm256_loadu_ps(brow.add(40)),
                        ),
                    );
                    acc6 = _mm256_add_ps(
                        acc6,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(6)),
                            _mm256_loadu_ps(brow.add(48)),
                        ),
                    );
                    acc7 = _mm256_add_ps(
                        acc7,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(7)),
                            _mm256_loadu_ps(brow.add(56)),
                        ),
                    );
                }
                let av = ar.add(base);
                let brow = slab.add(base * 8);
                if ktail > 0 {
                    acc0 = _mm256_add_ps(
                        acc0,
                        _mm256_mul_ps(_mm256_set1_ps(*av), _mm256_loadu_ps(brow)),
                    );
                }
                if ktail > 1 {
                    acc1 = _mm256_add_ps(
                        acc1,
                        _mm256_mul_ps(_mm256_set1_ps(*av.add(1)), _mm256_loadu_ps(brow.add(8))),
                    );
                }
                if ktail > 2 {
                    acc2 = _mm256_add_ps(
                        acc2,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(2)),
                            _mm256_loadu_ps(brow.add(16)),
                        ),
                    );
                }
                if ktail > 3 {
                    acc3 = _mm256_add_ps(
                        acc3,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(3)),
                            _mm256_loadu_ps(brow.add(24)),
                        ),
                    );
                }
                if ktail > 4 {
                    acc4 = _mm256_add_ps(
                        acc4,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(4)),
                            _mm256_loadu_ps(brow.add(32)),
                        ),
                    );
                }
                if ktail > 5 {
                    acc5 = _mm256_add_ps(
                        acc5,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(5)),
                            _mm256_loadu_ps(brow.add(40)),
                        ),
                    );
                }
                if ktail > 6 {
                    acc6 = _mm256_add_ps(
                        acc6,
                        _mm256_mul_ps(
                            _mm256_set1_ps(*av.add(6)),
                            _mm256_loadu_ps(brow.add(48)),
                        ),
                    );
                }
                let s04 = _mm256_add_ps(acc0, acc4);
                let s26 = _mm256_add_ps(acc2, acc6);
                let s15 = _mm256_add_ps(acc1, acc5);
                let s37 = _mm256_add_ps(acc3, acc7);
                let even = _mm256_add_ps(s04, s26);
                let odd = _mm256_add_ps(s15, s37);
                _mm256_storeu_ps(c.as_mut_ptr().add(i * n + jb * 8), _mm256_add_ps(even, odd));
            }
        }
        let tail_base = nblocks * k * 8;
        for i in 0..m {
            let ar = &a[i * k..(i + 1) * k];
            for (jt, j) in (nblocks * 8..n).enumerate() {
                c[i * n + j] =
                    super::scalar::dot8(ar, &bp[tail_base + jt * k..tail_base + (jt + 1) * k]);
            }
        }
    }

    /// Row max — AVX2 tier (see [`scalar::row_max`]).
    pub fn row_max(row: &[f32]) -> f32 {
        assert_avx2();
        unsafe { row_max_avx2(row) }
    }

    /// `Σ exp(v - max)` — AVX2 tier (see [`scalar::sum_exp`]).
    pub fn sum_exp(row: &[f32], max: f32) -> f32 {
        assert_avx2();
        unsafe { sum_exp_avx2(row, max) }
    }

    /// Vector mirror of [`super::exp_lane`] — the identical operation
    /// sequence per element, so each lane rounds exactly as the scalar
    /// tier does.
    #[target_feature(enable = "avx2")]
    unsafe fn exp8(x: __m256) -> __m256 {
        let y = _mm256_mul_ps(x, _mm256_set1_ps(std::f32::consts::LOG2_E));
        let n = _mm256_round_ps(y, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        let r = _mm256_mul_ps(_mm256_sub_ps(y, n), _mm256_set1_ps(std::f32::consts::LN_2));
        let mut p = _mm256_set1_ps(1.0 / 720.0);
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.0 / 120.0));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.0 / 24.0));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.0 / 6.0));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(0.5));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.0));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.0));
        let ni = _mm256_cvtps_epi32(n);
        let scale = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            ni,
            _mm256_set1_epi32(127),
        )));
        let res = _mm256_mul_ps(p, scale);
        // Flush x < -87 to zero (same threshold as the scalar tier; the
        // kept range has a normal biased exponent, so `scale` is exact).
        let keep = _mm256_cmp_ps::<_CMP_GE_OQ>(x, _mm256_set1_ps(-87.0));
        _mm256_and_ps(res, keep)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn sum_exp_avx2(row: &[f32], max: f32) -> f32 {
        let chunks = row.len() / 8;
        let base = chunks * 8;
        let maxv = _mm256_set1_ps(max);
        let mut acc = _mm256_setzero_ps();
        for ch in 0..chunks {
            let v = _mm256_loadu_ps(row.as_ptr().add(ch * 8));
            acc = _mm256_add_ps(acc, exp8(_mm256_sub_ps(v, maxv)));
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for (l, &v) in lanes.iter_mut().zip(&row[base..]) {
            *l += super::exp_lane(v - max);
        }
        reduce8(&lanes)
    }

    /// Elementwise GELU over a buffer — AVX2 tier (see
    /// [`scalar::gelu_into`]).
    pub fn gelu_into(buf: &mut [f32]) {
        assert_avx2();
        unsafe { gelu_avx2(buf) }
    }

    /// Vector mirror of [`super::gelu_lane`]: the same mul/add chain for
    /// the tanh argument, `exp8` for `e = exp(-2|u|)`, an exactly-rounded
    /// VDIVPS for `(1 - e) / (1 + e)`, and sign reattachment via bit ops.
    #[target_feature(enable = "avx2")]
    unsafe fn gelu8(x: __m256) -> __m256 {
        let c = _mm256_set1_ps(0.797_884_6);
        let a = _mm256_set1_ps(0.044715);
        let one = _mm256_set1_ps(1.0);
        let sign = _mm256_set1_ps(-0.0);
        let x3 = _mm256_mul_ps(_mm256_mul_ps(_mm256_mul_ps(a, x), x), x);
        let u = _mm256_mul_ps(c, _mm256_add_ps(x, x3));
        let au = _mm256_andnot_ps(sign, u);
        let e = exp8(_mm256_xor_ps(_mm256_add_ps(au, au), sign));
        let t = _mm256_div_ps(_mm256_sub_ps(one, e), _mm256_add_ps(one, e));
        let t = _mm256_or_ps(t, _mm256_and_ps(u, sign));
        _mm256_mul_ps(_mm256_mul_ps(_mm256_set1_ps(0.5), x), _mm256_add_ps(one, t))
    }

    #[target_feature(enable = "avx2")]
    unsafe fn gelu_avx2(buf: &mut [f32]) {
        let chunks = buf.len() / 8;
        let base = chunks * 8;
        for ch in 0..chunks {
            let p = buf.as_mut_ptr().add(ch * 8);
            _mm256_storeu_ps(p, gelu8(_mm256_loadu_ps(p)));
        }
        for v in &mut buf[base..] {
            *v = super::gelu_lane(*v);
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn row_max_avx2(row: &[f32]) -> f32 {
        let chunks = row.len() / 8;
        let base = chunks * 8;
        let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
        for ch in 0..chunks {
            let v = _mm256_loadu_ps(row.as_ptr().add(ch * 8));
            acc = _mm256_max_ps(acc, v);
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for (l, &v) in lanes.iter_mut().zip(&row[base..]) {
            *l = super::vmax(*l, v);
        }
        super::vmax(
            super::vmax(super::vmax(lanes[0], lanes[4]), super::vmax(lanes[2], lanes[6])),
            super::vmax(super::vmax(lanes[1], lanes[5]), super::vmax(lanes[3], lanes[7])),
        )
    }

    /// Int8 matmul — AVX2 tier (see [`scalar::qmatmul_transb_into`]).
    /// The i32 accumulation is exact, so this is bit-identical to the
    /// scalar tier by construction.
    #[allow(clippy::too_many_arguments)]
    pub fn qmatmul_transb_into(
        xq: &[i8],
        xs: &[f32],
        wq: &[i8],
        ws: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        assert!(xq.len() >= m * k && wq.len() >= n * k && out.len() >= m * n);
        assert_avx2();
        unsafe { qmatmul_avx2(xq, xs, wq, ws, bias, out, m, k, n) }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn qmatmul_avx2(
        xq: &[i8],
        xs: &[f32],
        wq: &[i8],
        ws: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        let chunks = k / 32;
        let base = chunks * 32;
        // Widened activation chunks are hoisted out of the column loop
        // (one widen per row instead of one per 4-column block) for rows
        // up to MAXCH chunks; longer rows widen inline past the buffer.
        const MAXCH: usize = 16;
        let mut xlobuf = [_mm256_setzero_si256(); MAXCH];
        let mut xhibuf = [_mm256_setzero_si256(); MAXCH];
        let cached = chunks.min(MAXCH);
        for i in 0..m {
            let xr = xq.as_ptr().add(i * k);
            for ch in 0..cached {
                let xv = _mm256_loadu_si256(xr.add(ch * 32) as *const __m256i);
                xlobuf[ch] = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(xv));
                xhibuf[ch] = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(xv, 1));
            }
            // Four weight rows share each activation widen, and the
            // 4-way horizontal reduce collapses to two VPHADDD trees
            // instead of four 8-lane scalar sums. The i32 arithmetic is
            // exact, so any reduction order is bit-identical.
            let mut j = 0usize;
            while j + 4 <= n {
                let w0 = wq.as_ptr().add(j * k);
                let w1 = wq.as_ptr().add((j + 1) * k);
                let w2 = wq.as_ptr().add((j + 2) * k);
                let w3 = wq.as_ptr().add((j + 3) * k);
                let mut acc0 = _mm256_setzero_si256();
                let mut acc1 = _mm256_setzero_si256();
                let mut acc2 = _mm256_setzero_si256();
                let mut acc3 = _mm256_setzero_si256();
                for ch in 0..chunks {
                    let (xlo, xhi) = if ch < cached {
                        (xlobuf[ch], xhibuf[ch])
                    } else {
                        let xv = _mm256_loadu_si256(xr.add(ch * 32) as *const __m256i);
                        (
                            _mm256_cvtepi8_epi16(_mm256_castsi256_si128(xv)),
                            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(xv, 1)),
                        )
                    };
                    let wv = _mm256_loadu_si256(w0.add(ch * 32) as *const __m256i);
                    acc0 = _mm256_add_epi32(
                        acc0,
                        _mm256_madd_epi16(
                            xlo,
                            _mm256_cvtepi8_epi16(_mm256_castsi256_si128(wv)),
                        ),
                    );
                    acc0 = _mm256_add_epi32(
                        acc0,
                        _mm256_madd_epi16(
                            xhi,
                            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(wv, 1)),
                        ),
                    );
                    let wv = _mm256_loadu_si256(w1.add(ch * 32) as *const __m256i);
                    acc1 = _mm256_add_epi32(
                        acc1,
                        _mm256_madd_epi16(
                            xlo,
                            _mm256_cvtepi8_epi16(_mm256_castsi256_si128(wv)),
                        ),
                    );
                    acc1 = _mm256_add_epi32(
                        acc1,
                        _mm256_madd_epi16(
                            xhi,
                            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(wv, 1)),
                        ),
                    );
                    let wv = _mm256_loadu_si256(w2.add(ch * 32) as *const __m256i);
                    acc2 = _mm256_add_epi32(
                        acc2,
                        _mm256_madd_epi16(
                            xlo,
                            _mm256_cvtepi8_epi16(_mm256_castsi256_si128(wv)),
                        ),
                    );
                    acc2 = _mm256_add_epi32(
                        acc2,
                        _mm256_madd_epi16(
                            xhi,
                            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(wv, 1)),
                        ),
                    );
                    let wv = _mm256_loadu_si256(w3.add(ch * 32) as *const __m256i);
                    acc3 = _mm256_add_epi32(
                        acc3,
                        _mm256_madd_epi16(
                            xlo,
                            _mm256_cvtepi8_epi16(_mm256_castsi256_si128(wv)),
                        ),
                    );
                    acc3 = _mm256_add_epi32(
                        acc3,
                        _mm256_madd_epi16(
                            xhi,
                            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(wv, 1)),
                        ),
                    );
                }
                let sums = super::hsum4_epi32(acc0, acc1, acc2, acc3);
                if base == k {
                    super::dequant4(sums, xs[i], ws, bias, out, i, j, n);
                } else {
                    let mut tails = [0i32; 4];
                    _mm_storeu_si128(tails.as_mut_ptr() as *mut __m128i, sums);
                    for (col, &sv) in tails.iter().enumerate() {
                        let jj = j + col;
                        let wr = wq.as_ptr().add(jj * k);
                        let sum = sv
                            + qdot(
                                std::slice::from_raw_parts(xr.add(base), k - base),
                                std::slice::from_raw_parts(wr.add(base), k - base),
                            );
                        let deq = sum as f32 * (xs[i] * ws[jj]);
                        out[i * n + jj] = match bias {
                            Some(b) => deq + b[jj],
                            None => deq,
                        };
                    }
                }
                j += 4;
            }
            while j < n {
                let wr = wq.as_ptr().add(j * k);
                let mut acc = _mm256_setzero_si256();
                for ch in 0..chunks {
                    let xv = _mm256_loadu_si256(xr.add(ch * 32) as *const __m256i);
                    let wv = _mm256_loadu_si256(wr.add(ch * 32) as *const __m256i);
                    let xlo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(xv));
                    let xhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(xv, 1));
                    let wlo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(wv));
                    let whi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(wv, 1));
                    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xlo, wlo));
                    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xhi, whi));
                }
                let mut lanes = [0i32; 8];
                _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
                let mut sum: i32 = lanes.iter().sum();
                sum += qdot(
                    std::slice::from_raw_parts(xr.add(base), k - base),
                    std::slice::from_raw_parts(wr.add(base), k - base),
                );
                let deq = sum as f32 * (xs[i] * ws[j]);
                out[i * n + j] = match bias {
                    Some(b) => deq + b[j],
                    None => deq,
                };
                j += 1;
            }
        }
    }

    /// Per-row symmetric int8 quantization — AVX2 tier, bit-identical
    /// to [`scalar::quantize_row_i8`]: VANDNPS+VMAXPS absmax (same
    /// value as the scalar fold for finite rows), then per element an
    /// identically-rounded multiply, VROUNDPS round-to-nearest-even, a
    /// constant-first VMAXPS/VMINPS clamp (NaN from a denormal-absmax
    /// `0 * inf` stays NaN, as Rust's `clamp` keeps it), and VCVTPS2DQ
    /// whose low byte equals the scalar `as i8` cast for every
    /// post-clamp value (NaN converts to `0x8000_0000`, low byte 0).
    pub fn quantize_row_i8(src: &[f32], dst: &mut [i8]) -> f32 {
        debug_assert_eq!(src.len(), dst.len());
        assert_avx2();
        unsafe { quantize_avx2(src, dst) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn quantize_avx2(src: &[f32], dst: &mut [i8]) -> f32 {
        let len = src.len();
        let chunks = len / 8;
        let base = chunks * 8;
        let sp = src.as_ptr();
        let signbit = _mm256_set1_ps(-0.0);
        let mut maxv = _mm256_setzero_ps();
        for ch in 0..chunks {
            let v = _mm256_loadu_ps(sp.add(ch * 8));
            maxv = _mm256_max_ps(maxv, _mm256_andnot_ps(signbit, v));
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), maxv);
        for (l, &v) in lanes.iter_mut().zip(&src[base..]) {
            *l = super::vmax(*l, v.abs());
        }
        let absmax = super::vmax(
            super::vmax(super::vmax(lanes[0], lanes[4]), super::vmax(lanes[2], lanes[6])),
            super::vmax(super::vmax(lanes[1], lanes[5]), super::vmax(lanes[3], lanes[7])),
        );
        if absmax == 0.0 || !absmax.is_finite() {
            dst.fill(0);
            return 0.0;
        }
        let inv = 127.0 / absmax;
        let invv = _mm256_set1_ps(inv);
        let lo = _mm256_set1_ps(-127.0);
        let hi = _mm256_set1_ps(127.0);
        // Low byte of each 32-bit lane, gathered into the first 4 bytes
        // of each 128-bit half.
        let shuf = _mm256_setr_epi8(
            0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, 0, 4, 8, 12, -1, -1,
            -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
        );
        let dp = dst.as_mut_ptr();
        for ch in 0..chunks {
            let t = _mm256_mul_ps(_mm256_loadu_ps(sp.add(ch * 8)), invv);
            let t = _mm256_round_ps(t, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
            let t = _mm256_min_ps(hi, _mm256_max_ps(lo, t));
            let ix = _mm256_cvtps_epi32(t);
            let packed = _mm256_shuffle_epi8(ix, shuf);
            let b_lo = _mm_cvtsi128_si32(_mm256_castsi256_si128(packed));
            let b_hi = _mm_cvtsi128_si32(_mm256_extracti128_si256(packed, 1));
            std::ptr::write_unaligned(dp.add(ch * 8) as *mut i32, b_lo);
            std::ptr::write_unaligned(dp.add(ch * 8 + 4) as *mut i32, b_hi);
        }
        for (d, &v) in dst[base..].iter_mut().zip(&src[base..]) {
            *d = (v * inv).round_ties_even().clamp(-127.0, 127.0) as i8;
        }
        absmax / 127.0
    }

    /// QK^T score row — AVX2 tier (see [`scalar::attn_scores_into`]).
    pub fn attn_scores_into(
        q: &[f32],
        keys: &[f32],
        stride: usize,
        scale: f32,
        scores: &mut [f32],
    ) {
        let dh = q.len();
        let n = scores.len();
        assert!(n == 0 || keys.len() >= (n - 1) * stride + dh);
        assert_avx2();
        unsafe { attn_scores_avx2(q, keys, stride, scale, scores) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn attn_scores_avx2(
        q: &[f32],
        keys: &[f32],
        stride: usize,
        scale: f32,
        scores: &mut [f32],
    ) {
        let dh = q.len();
        let chunks = dh / 8;
        let tail = dh % 8;
        let base = chunks * 8;
        let qp = q.as_ptr();
        let n = scores.len();
        // Four key rows at a time: the query chunk is loaded once and
        // each row keeps its own lane accumulator (per-element
        // accumulation unchanged; independent add chains hide latency).
        let mut si = 0usize;
        while si + 4 <= n {
            let k0 = keys.as_ptr().add(si * stride);
            let k1 = keys.as_ptr().add((si + 1) * stride);
            let k2 = keys.as_ptr().add((si + 2) * stride);
            let k3 = keys.as_ptr().add((si + 3) * stride);
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            for ch in 0..chunks {
                let qv = _mm256_loadu_ps(qp.add(ch * 8));
                acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(qv, _mm256_loadu_ps(k0.add(ch * 8))));
                acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(qv, _mm256_loadu_ps(k1.add(ch * 8))));
                acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(qv, _mm256_loadu_ps(k2.add(ch * 8))));
                acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(qv, _mm256_loadu_ps(k3.add(ch * 8))));
            }
            for (col, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
                let mut lanes = [0.0f32; 8];
                _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
                let kr = keys.as_ptr().add((si + col) * stride);
                for (l, lane) in lanes.iter_mut().enumerate().take(tail) {
                    *lane += *qp.add(base + l) * *kr.add(base + l);
                }
                scores[si + col] = reduce8(&lanes) * scale;
            }
            si += 4;
        }
        while si < n {
            let kr = keys.as_ptr().add(si * stride);
            let mut acc = _mm256_setzero_ps();
            for ch in 0..chunks {
                let qv = _mm256_loadu_ps(qp.add(ch * 8));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(qv, _mm256_loadu_ps(kr.add(ch * 8))));
            }
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
            for (l, lane) in lanes.iter_mut().enumerate().take(tail) {
                *lane += *qp.add(base + l) * *kr.add(base + l);
            }
            scores[si] = reduce8(&lanes) * scale;
            si += 1;
        }
    }

    /// In-place softmax over one row — AVX2 tier, bit-identical to
    /// [`scalar::softmax_into`]: the same VMAXPS max pass, `exp8` (the
    /// exact vector mirror of `exp_lane`), the same lane-split sum, and
    /// the same scalar `1 / sum.max(1e-12)` broadcast multiply.
    pub fn softmax_into(row: &mut [f32]) {
        assert_avx2();
        unsafe { softmax_avx2(row) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn softmax_avx2(row: &mut [f32]) {
        let max = row_max_avx2(row);
        let chunks = row.len() / 8;
        let base = chunks * 8;
        let maxv = _mm256_set1_ps(max);
        let mut acc = _mm256_setzero_ps();
        for ch in 0..chunks {
            let p = row.as_mut_ptr().add(ch * 8);
            let e = exp8(_mm256_sub_ps(_mm256_loadu_ps(p), maxv));
            _mm256_storeu_ps(p, e);
            acc = _mm256_add_ps(acc, e);
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for (l, v) in lanes.iter_mut().zip(&mut row[base..]) {
            let e = super::exp_lane(*v - max);
            *v = e;
            *l += e;
        }
        let sum = reduce8(&lanes);
        let inv = 1.0 / sum.max(1e-12);
        let invv = _mm256_set1_ps(inv);
        for ch in 0..chunks {
            let p = row.as_mut_ptr().add(ch * 8);
            _mm256_storeu_ps(p, _mm256_mul_ps(_mm256_loadu_ps(p), invv));
        }
        for v in &mut row[base..] {
            *v *= inv;
        }
    }

    /// Softmax-weighted V accumulation — AVX2 tier (see
    /// [`scalar::attn_weighted_sum_into`]; elementwise over `j` with
    /// `si` ascending, so bit-identical by construction).
    pub fn attn_weighted_sum_into(
        probs: &[f32],
        values: &[f32],
        stride: usize,
        ctx: &mut [f32],
    ) {
        let dh = ctx.len();
        assert!(probs.is_empty() || values.len() >= (probs.len() - 1) * stride + dh);
        assert_avx2();
        unsafe { weighted_sum_avx2(probs, values, stride, ctx) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn weighted_sum_avx2(probs: &[f32], values: &[f32], stride: usize, ctx: &mut [f32]) {
        let dh = ctx.len();
        let chunks = dh / 8;
        let base = chunks * 8;
        let cp = ctx.as_mut_ptr();
        for (si, &w) in probs.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let wv = _mm256_set1_ps(w);
            let vr = values.as_ptr().add(si * stride);
            for ch in 0..chunks {
                let c = _mm256_loadu_ps(cp.add(ch * 8));
                let v = _mm256_loadu_ps(vr.add(ch * 8));
                _mm256_storeu_ps(cp.add(ch * 8), _mm256_add_ps(c, _mm256_mul_ps(wv, v)));
            }
            for (j, c) in ctx[base..].iter_mut().enumerate() {
                *c += w * *vr.add(base + j);
            }
        }
    }

    /// One layer-norm row — AVX2 tier, bit-identical to
    /// [`scalar::layer_norm_row_into`] (lane-split sums, the same
    /// scalar mean/var/rstd steps, and the same normalize association).
    pub fn layer_norm_row_into(
        row: &[f32],
        gamma: &[f32],
        beta: &[f32],
        out: &mut [f32],
    ) -> (f32, f32) {
        let d = row.len();
        assert!(gamma.len() >= d && beta.len() >= d && out.len() >= d);
        assert_avx2();
        unsafe { ln_row_avx2(row, gamma, beta, out) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn ln_row_avx2(
        row: &[f32],
        gamma: &[f32],
        beta: &[f32],
        out: &mut [f32],
    ) -> (f32, f32) {
        let d = row.len();
        let chunks = d / 8;
        let base = chunks * 8;
        let rp = row.as_ptr();
        let mut acc = _mm256_setzero_ps();
        for ch in 0..chunks {
            acc = _mm256_add_ps(acc, _mm256_loadu_ps(rp.add(ch * 8)));
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for (l, &v) in lanes.iter_mut().zip(&row[base..]) {
            *l += v;
        }
        let mean = reduce8(&lanes) / d as f32;
        let meanv = _mm256_set1_ps(mean);
        let mut vacc = _mm256_setzero_ps();
        for ch in 0..chunks {
            let dv = _mm256_sub_ps(_mm256_loadu_ps(rp.add(ch * 8)), meanv);
            vacc = _mm256_add_ps(vacc, _mm256_mul_ps(dv, dv));
        }
        let mut vlanes = [0.0f32; 8];
        _mm256_storeu_ps(vlanes.as_mut_ptr(), vacc);
        for (l, &v) in vlanes.iter_mut().zip(&row[base..]) {
            let dv = v - mean;
            *l += dv * dv;
        }
        let var = reduce8(&vlanes) / d as f32;
        let rstd = 1.0 / (var + 1e-5).sqrt();
        let rstdv = _mm256_set1_ps(rstd);
        for ch in 0..chunks {
            let x = _mm256_sub_ps(_mm256_loadu_ps(rp.add(ch * 8)), meanv);
            let g = _mm256_loadu_ps(gamma.as_ptr().add(ch * 8));
            let b = _mm256_loadu_ps(beta.as_ptr().add(ch * 8));
            let y = _mm256_add_ps(_mm256_mul_ps(_mm256_mul_ps(g, x), rstdv), b);
            _mm256_storeu_ps(out.as_mut_ptr().add(ch * 8), y);
        }
        for j in base..d {
            out[j] = gamma[j] * (row[j] - mean) * rstd + beta[j];
        }
        (mean, rstd)
    }
}

/// NEON tier (aarch64): paired 128-bit q-registers emulate the 8-lane
/// semantics — lanes 0-3 in the low register, 4-7 in the high one — so
/// the lo/hi tree reduce matches the AVX2 split reduce bit-for-bit.
/// The int8 kernel reuses the scalar i32 path (exact arithmetic makes
/// any implementation bit-identical; vectorizing it is a pure perf
/// follow-up on real aarch64 hardware).
#[cfg(target_arch = "aarch64")]
pub mod neon {
    use super::reduce8;
    use super::scalar::{dot8_col, qdot};
    use std::arch::aarch64::*;

    /// `C = A * B^T` into `c` — NEON tier (see [`scalar::matmul_transb_into`]).
    pub fn matmul_transb_into(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        assert!(a.len() >= m * k && b.len() >= n * k && c.len() >= m * n);
        unsafe { transb_neon(a, b, c, m, k, n) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn transb_neon(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let chunks = k / 8;
        let tail = k % 8;
        let base = chunks * 8;
        for i in 0..m {
            let ar = a.as_ptr().add(i * k);
            for j in 0..n {
                let br = b.as_ptr().add(j * k);
                let mut acc_lo = vdupq_n_f32(0.0);
                let mut acc_hi = vdupq_n_f32(0.0);
                for ch in 0..chunks {
                    let alo = vld1q_f32(ar.add(ch * 8));
                    let ahi = vld1q_f32(ar.add(ch * 8 + 4));
                    let blo = vld1q_f32(br.add(ch * 8));
                    let bhi = vld1q_f32(br.add(ch * 8 + 4));
                    // mul + add (no fused multiply-accumulate): rounding
                    // must match the scalar tier.
                    acc_lo = vaddq_f32(acc_lo, vmulq_f32(alo, blo));
                    acc_hi = vaddq_f32(acc_hi, vmulq_f32(ahi, bhi));
                }
                let mut lanes = [0.0f32; 8];
                vst1q_f32(lanes.as_mut_ptr(), acc_lo);
                vst1q_f32(lanes.as_mut_ptr().add(4), acc_hi);
                for l in 0..tail {
                    lanes[l] += *ar.add(base + l) * *br.add(base + l);
                }
                c[i * n + j] = reduce8(&lanes);
            }
        }
    }

    /// `C = A * B` with pre-transposed `bt` — NEON tier (see
    /// [`scalar::matmul_xposed_into`]).
    pub fn matmul_xposed_into(
        a: &[f32],
        bt: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        assert!(a.len() >= m * k && bt.len() >= k * n && c.len() >= m * n);
        unsafe { xposed_neon(a, bt, c, m, k, n) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn xposed_neon(a: &[f32], bt: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let nblocks = n / 8;
        for i in 0..m {
            let ar = &a[i * k..(i + 1) * k];
            for jb in 0..nblocks {
                let j0 = jb * 8;
                // acc[lane] = (cols 0-3, cols 4-7) of this j-block.
                let mut acc = [(vdupq_n_f32(0.0), vdupq_n_f32(0.0)); 8];
                for (p, &av) in ar.iter().enumerate() {
                    let avv = vdupq_n_f32(av);
                    let blo = vld1q_f32(bt.as_ptr().add(p * n + j0));
                    let bhi = vld1q_f32(bt.as_ptr().add(p * n + j0 + 4));
                    let l = p & 7;
                    acc[l].0 = vaddq_f32(acc[l].0, vmulq_f32(avv, blo));
                    acc[l].1 = vaddq_f32(acc[l].1, vmulq_f32(avv, bhi));
                }
                let e_lo =
                    vaddq_f32(vaddq_f32(acc[0].0, acc[4].0), vaddq_f32(acc[2].0, acc[6].0));
                let o_lo =
                    vaddq_f32(vaddq_f32(acc[1].0, acc[5].0), vaddq_f32(acc[3].0, acc[7].0));
                let e_hi =
                    vaddq_f32(vaddq_f32(acc[0].1, acc[4].1), vaddq_f32(acc[2].1, acc[6].1));
                let o_hi =
                    vaddq_f32(vaddq_f32(acc[1].1, acc[5].1), vaddq_f32(acc[3].1, acc[7].1));
                vst1q_f32(c.as_mut_ptr().add(i * n + j0), vaddq_f32(e_lo, o_lo));
                vst1q_f32(c.as_mut_ptr().add(i * n + j0 + 4), vaddq_f32(e_hi, o_hi));
            }
            for j in nblocks * 8..n {
                c[i * n + j] = dot8_col(ar, bt, n, j);
            }
        }
    }

    /// `C = A * B` with `bp` packed by [`super::pack_xposed_blocks`] —
    /// NEON tier (see [`scalar::matmul_xpacked_into`]).
    pub fn matmul_xpacked_into(
        a: &[f32],
        bp: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        assert!(a.len() >= m * k && bp.len() >= k * n && c.len() >= m * n);
        unsafe { xpacked_neon(a, bp, c, m, k, n) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn xpacked_neon(a: &[f32], bp: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let nblocks = n / 8;
        for jb in 0..nblocks {
            let slab = bp.as_ptr().add(jb * k * 8);
            for i in 0..m {
                let ar = &a[i * k..(i + 1) * k];
                // acc[lane] = (cols 0-3, cols 4-7) of this j-block.
                let mut acc = [(vdupq_n_f32(0.0), vdupq_n_f32(0.0)); 8];
                for (p, &av) in ar.iter().enumerate() {
                    let avv = vdupq_n_f32(av);
                    let blo = vld1q_f32(slab.add(p * 8));
                    let bhi = vld1q_f32(slab.add(p * 8 + 4));
                    let l = p & 7;
                    acc[l].0 = vaddq_f32(acc[l].0, vmulq_f32(avv, blo));
                    acc[l].1 = vaddq_f32(acc[l].1, vmulq_f32(avv, bhi));
                }
                let e_lo =
                    vaddq_f32(vaddq_f32(acc[0].0, acc[4].0), vaddq_f32(acc[2].0, acc[6].0));
                let o_lo =
                    vaddq_f32(vaddq_f32(acc[1].0, acc[5].0), vaddq_f32(acc[3].0, acc[7].0));
                let e_hi =
                    vaddq_f32(vaddq_f32(acc[0].1, acc[4].1), vaddq_f32(acc[2].1, acc[6].1));
                let o_hi =
                    vaddq_f32(vaddq_f32(acc[1].1, acc[5].1), vaddq_f32(acc[3].1, acc[7].1));
                vst1q_f32(c.as_mut_ptr().add(i * n + jb * 8), vaddq_f32(e_lo, o_lo));
                vst1q_f32(c.as_mut_ptr().add(i * n + jb * 8 + 4), vaddq_f32(e_hi, o_hi));
            }
        }
        let tail_base = nblocks * k * 8;
        for i in 0..m {
            let ar = &a[i * k..(i + 1) * k];
            for (jt, j) in (nblocks * 8..n).enumerate() {
                c[i * n + j] =
                    super::scalar::dot8(ar, &bp[tail_base + jt * k..tail_base + (jt + 1) * k]);
            }
        }
    }

    /// Row max — NEON tier (see [`scalar::row_max`]).
    pub fn row_max(row: &[f32]) -> f32 {
        unsafe { row_max_neon(row) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn row_max_neon(row: &[f32]) -> f32 {
        let chunks = row.len() / 8;
        let base = chunks * 8;
        let mut acc_lo = vdupq_n_f32(f32::NEG_INFINITY);
        let mut acc_hi = vdupq_n_f32(f32::NEG_INFINITY);
        for ch in 0..chunks {
            acc_lo = vmaxq_f32(acc_lo, vld1q_f32(row.as_ptr().add(ch * 8)));
            acc_hi = vmaxq_f32(acc_hi, vld1q_f32(row.as_ptr().add(ch * 8 + 4)));
        }
        let mut lanes = [0.0f32; 8];
        vst1q_f32(lanes.as_mut_ptr(), acc_lo);
        vst1q_f32(lanes.as_mut_ptr().add(4), acc_hi);
        for (l, &v) in lanes.iter_mut().zip(&row[base..]) {
            *l = super::vmax(*l, v);
        }
        super::vmax(
            super::vmax(super::vmax(lanes[0], lanes[4]), super::vmax(lanes[2], lanes[6])),
            super::vmax(super::vmax(lanes[1], lanes[5]), super::vmax(lanes[3], lanes[7])),
        )
    }

    /// Int8 matmul — NEON tier delegates to the scalar i32 path (exact,
    /// therefore bit-identical).
    #[allow(clippy::too_many_arguments)]
    pub fn qmatmul_transb_into(
        xq: &[i8],
        xs: &[f32],
        wq: &[i8],
        ws: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        let _ = qdot; // shared helper referenced so tiers stay symmetric
        super::scalar::qmatmul_transb_into(xq, xs, wq, ws, bias, out, m, k, n);
    }

    /// Per-row symmetric int8 quantization — NEON tier, bit-identical
    /// to [`scalar::quantize_row_i8`]: VABS+FMAX absmax, FRINTN
    /// (round-to-nearest-even) per element, FMIN/FMAX clamp (NEON
    /// min/max propagate NaN from either operand, matching Rust's
    /// `clamp`), FCVTZS (NaN converts to 0, like the scalar cast), and
    /// truncating XTN narrows to the low byte.
    pub fn quantize_row_i8(src: &[f32], dst: &mut [i8]) -> f32 {
        debug_assert_eq!(src.len(), dst.len());
        unsafe { quantize_neon(src, dst) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn quantize_neon(src: &[f32], dst: &mut [i8]) -> f32 {
        let len = src.len();
        let chunks = len / 8;
        let base = chunks * 8;
        let sp = src.as_ptr();
        let mut max_lo = vdupq_n_f32(0.0);
        let mut max_hi = vdupq_n_f32(0.0);
        for ch in 0..chunks {
            max_lo = vmaxq_f32(max_lo, vabsq_f32(vld1q_f32(sp.add(ch * 8))));
            max_hi = vmaxq_f32(max_hi, vabsq_f32(vld1q_f32(sp.add(ch * 8 + 4))));
        }
        let mut lanes = [0.0f32; 8];
        vst1q_f32(lanes.as_mut_ptr(), max_lo);
        vst1q_f32(lanes.as_mut_ptr().add(4), max_hi);
        for (l, &v) in lanes.iter_mut().zip(&src[base..]) {
            *l = super::vmax(*l, v.abs());
        }
        let absmax = super::vmax(
            super::vmax(super::vmax(lanes[0], lanes[4]), super::vmax(lanes[2], lanes[6])),
            super::vmax(super::vmax(lanes[1], lanes[5]), super::vmax(lanes[3], lanes[7])),
        );
        if absmax == 0.0 || !absmax.is_finite() {
            dst.fill(0);
            return 0.0;
        }
        let inv = 127.0 / absmax;
        let invv = vdupq_n_f32(inv);
        let lo = vdupq_n_f32(-127.0);
        let hi = vdupq_n_f32(127.0);
        for ch in 0..chunks {
            let t0 = vrndnq_f32(vmulq_f32(vld1q_f32(sp.add(ch * 8)), invv));
            let t1 = vrndnq_f32(vmulq_f32(vld1q_f32(sp.add(ch * 8 + 4)), invv));
            let t0 = vminq_f32(hi, vmaxq_f32(lo, t0));
            let t1 = vminq_f32(hi, vmaxq_f32(lo, t1));
            let s16 = vcombine_s16(vmovn_s32(vcvtq_s32_f32(t0)), vmovn_s32(vcvtq_s32_f32(t1)));
            vst1_s8(dst.as_mut_ptr().add(ch * 8), vmovn_s16(s16));
        }
        for (d, &v) in dst[base..].iter_mut().zip(&src[base..]) {
            *d = (v * inv).round_ties_even().clamp(-127.0, 127.0) as i8;
        }
        absmax / 127.0
    }

    /// QK^T score row — NEON tier (see [`scalar::attn_scores_into`]).
    pub fn attn_scores_into(
        q: &[f32],
        keys: &[f32],
        stride: usize,
        scale: f32,
        scores: &mut [f32],
    ) {
        let dh = q.len();
        let n = scores.len();
        assert!(n == 0 || keys.len() >= (n - 1) * stride + dh);
        unsafe { attn_scores_neon(q, keys, stride, scale, scores) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn attn_scores_neon(
        q: &[f32],
        keys: &[f32],
        stride: usize,
        scale: f32,
        scores: &mut [f32],
    ) {
        let dh = q.len();
        let chunks = dh / 8;
        let tail = dh % 8;
        let base = chunks * 8;
        let qp = q.as_ptr();
        for (si, sv) in scores.iter_mut().enumerate() {
            let kr = keys.as_ptr().add(si * stride);
            let mut acc_lo = vdupq_n_f32(0.0);
            let mut acc_hi = vdupq_n_f32(0.0);
            for ch in 0..chunks {
                acc_lo = vaddq_f32(
                    acc_lo,
                    vmulq_f32(vld1q_f32(qp.add(ch * 8)), vld1q_f32(kr.add(ch * 8))),
                );
                acc_hi = vaddq_f32(
                    acc_hi,
                    vmulq_f32(vld1q_f32(qp.add(ch * 8 + 4)), vld1q_f32(kr.add(ch * 8 + 4))),
                );
            }
            let mut lanes = [0.0f32; 8];
            vst1q_f32(lanes.as_mut_ptr(), acc_lo);
            vst1q_f32(lanes.as_mut_ptr().add(4), acc_hi);
            for l in 0..tail {
                lanes[l] += *qp.add(base + l) * *kr.add(base + l);
            }
            *sv = reduce8(&lanes) * scale;
        }
    }

    /// Softmax-weighted V accumulation — NEON tier (see
    /// [`scalar::attn_weighted_sum_into`]).
    pub fn attn_weighted_sum_into(
        probs: &[f32],
        values: &[f32],
        stride: usize,
        ctx: &mut [f32],
    ) {
        let dh = ctx.len();
        assert!(probs.is_empty() || values.len() >= (probs.len() - 1) * stride + dh);
        unsafe { weighted_sum_neon(probs, values, stride, ctx) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn weighted_sum_neon(probs: &[f32], values: &[f32], stride: usize, ctx: &mut [f32]) {
        let dh = ctx.len();
        let chunks = dh / 8;
        let base = chunks * 8;
        let cp = ctx.as_mut_ptr();
        for (si, &w) in probs.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let wv = vdupq_n_f32(w);
            let vr = values.as_ptr().add(si * stride);
            for ch in 0..chunks {
                let c0 = vld1q_f32(cp.add(ch * 8));
                let c1 = vld1q_f32(cp.add(ch * 8 + 4));
                vst1q_f32(
                    cp.add(ch * 8),
                    vaddq_f32(c0, vmulq_f32(wv, vld1q_f32(vr.add(ch * 8)))),
                );
                vst1q_f32(
                    cp.add(ch * 8 + 4),
                    vaddq_f32(c1, vmulq_f32(wv, vld1q_f32(vr.add(ch * 8 + 4)))),
                );
            }
            for (j, c) in ctx[base..].iter_mut().enumerate() {
                *c += w * *vr.add(base + j);
            }
        }
    }

    /// One layer-norm row — NEON tier (see
    /// [`scalar::layer_norm_row_into`]). The softmax kernel is not
    /// NEON-vectorized (matching `sum_exp`, whose dispatch also falls
    /// back to the scalar polynomial-exp path on this tier).
    pub fn layer_norm_row_into(
        row: &[f32],
        gamma: &[f32],
        beta: &[f32],
        out: &mut [f32],
    ) -> (f32, f32) {
        let d = row.len();
        assert!(gamma.len() >= d && beta.len() >= d && out.len() >= d);
        unsafe { ln_row_neon(row, gamma, beta, out) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn ln_row_neon(
        row: &[f32],
        gamma: &[f32],
        beta: &[f32],
        out: &mut [f32],
    ) -> (f32, f32) {
        let d = row.len();
        let chunks = d / 8;
        let base = chunks * 8;
        let rp = row.as_ptr();
        let mut acc_lo = vdupq_n_f32(0.0);
        let mut acc_hi = vdupq_n_f32(0.0);
        for ch in 0..chunks {
            acc_lo = vaddq_f32(acc_lo, vld1q_f32(rp.add(ch * 8)));
            acc_hi = vaddq_f32(acc_hi, vld1q_f32(rp.add(ch * 8 + 4)));
        }
        let mut lanes = [0.0f32; 8];
        vst1q_f32(lanes.as_mut_ptr(), acc_lo);
        vst1q_f32(lanes.as_mut_ptr().add(4), acc_hi);
        for (l, &v) in lanes.iter_mut().zip(&row[base..]) {
            *l += v;
        }
        let mean = reduce8(&lanes) / d as f32;
        let meanv = vdupq_n_f32(mean);
        let mut vacc_lo = vdupq_n_f32(0.0);
        let mut vacc_hi = vdupq_n_f32(0.0);
        for ch in 0..chunks {
            let d0 = vsubq_f32(vld1q_f32(rp.add(ch * 8)), meanv);
            let d1 = vsubq_f32(vld1q_f32(rp.add(ch * 8 + 4)), meanv);
            vacc_lo = vaddq_f32(vacc_lo, vmulq_f32(d0, d0));
            vacc_hi = vaddq_f32(vacc_hi, vmulq_f32(d1, d1));
        }
        let mut vlanes = [0.0f32; 8];
        vst1q_f32(vlanes.as_mut_ptr(), vacc_lo);
        vst1q_f32(vlanes.as_mut_ptr().add(4), vacc_hi);
        for (l, &v) in vlanes.iter_mut().zip(&row[base..]) {
            let dv = v - mean;
            *l += dv * dv;
        }
        let var = reduce8(&vlanes) / d as f32;
        let rstd = 1.0 / (var + 1e-5).sqrt();
        let rstdv = vdupq_n_f32(rstd);
        for ch in 0..chunks {
            let x0 = vsubq_f32(vld1q_f32(rp.add(ch * 8)), meanv);
            let x1 = vsubq_f32(vld1q_f32(rp.add(ch * 8 + 4)), meanv);
            let g0 = vld1q_f32(gamma.as_ptr().add(ch * 8));
            let g1 = vld1q_f32(gamma.as_ptr().add(ch * 8 + 4));
            let b0 = vld1q_f32(beta.as_ptr().add(ch * 8));
            let b1 = vld1q_f32(beta.as_ptr().add(ch * 8 + 4));
            vst1q_f32(
                out.as_mut_ptr().add(ch * 8),
                vaddq_f32(vmulq_f32(vmulq_f32(g0, x0), rstdv), b0),
            );
            vst1q_f32(
                out.as_mut_ptr().add(ch * 8 + 4),
                vaddq_f32(vmulq_f32(vmulq_f32(g1, x1), rstdv), b1),
            );
        }
        for j in base..d {
            out[j] = gamma[j] * (row[j] - mean) * rstd + beta[j];
        }
        (mean, rstd)
    }
}

/// VNNI tier (x86-64): the AVX2 tier plus `VPDPBUSD` for the int8
/// matmul — every f32 kernel dispatches to the [`avx2`]
/// implementations, so only the int8 path differs. `VPDPBUSD` computes
/// a u8×i8 dot; the signed i8×i8 dot the backend needs is recovered
/// exactly by the abs/sign trick: `|x| ≤ 127` always fits u8 (the
/// quantizer clamps to ±127), `VPSIGNB` moves x's sign onto w (also
/// ±127, so no negation overflow), and `Σ |x|·sign(w, x) = Σ x·w` with
/// each 4-product group bounded by `4·127² = 64516` — far from both
/// the intermediate and i32 accumulator limits. Exact integer
/// arithmetic makes the tier bit-identical to scalar/AVX2/NEON by
/// construction. Both `VPDPBUSD` encodings are supported: the VEX one
/// on AVX-VNNI hosts (Alder Lake+), the EVEX one on
/// AVX512-VNNI+VL hosts (Ice Lake / Zen 4).
#[cfg(target_arch = "x86_64")]
pub mod vnni {
    use super::scalar::qdot;
    use std::arch::x86_64::*;

    fn assert_vnni() {
        assert!(
            super::tier_supported(super::IsaTier::Vnni),
            "VNNI kernels called on a host without AVX-VNNI or AVX512-VNNI+VL"
        );
    }

    macro_rules! vnni_qmatmul {
        ($name:ident, $feat:literal, $dpbusd:ident) => {
            #[allow(clippy::too_many_arguments)]
            #[target_feature(enable = $feat)]
            unsafe fn $name(
                xq: &[i8],
                xs: &[f32],
                wq: &[i8],
                ws: &[f32],
                bias: Option<&[f32]>,
                out: &mut [f32],
                m: usize,
                k: usize,
                n: usize,
            ) {
                let chunks = k / 32;
                let base = chunks * 32;
                // Activation chunks and their absolute values are
                // hoisted out of the column loop (the VPDPBUSD operand
                // transform depends only on x); rows longer than MAXCH
                // chunks recompute inline past the buffer.
                const MAXCH: usize = 16;
                let mut xvbuf = [_mm256_setzero_si256(); MAXCH];
                let mut axbuf = [_mm256_setzero_si256(); MAXCH];
                let cached = chunks.min(MAXCH);
                for i in 0..m {
                    let xr = xq.as_ptr().add(i * k);
                    for ch in 0..cached {
                        let xv = _mm256_loadu_si256(xr.add(ch * 32) as *const __m256i);
                        xvbuf[ch] = xv;
                        axbuf[ch] = _mm256_abs_epi8(xv);
                    }
                    let mut j = 0usize;
                    while j + 4 <= n {
                        let w0 = wq.as_ptr().add(j * k);
                        let w1 = wq.as_ptr().add((j + 1) * k);
                        let w2 = wq.as_ptr().add((j + 2) * k);
                        let w3 = wq.as_ptr().add((j + 3) * k);
                        let mut acc0 = _mm256_setzero_si256();
                        let mut acc1 = _mm256_setzero_si256();
                        let mut acc2 = _mm256_setzero_si256();
                        let mut acc3 = _mm256_setzero_si256();
                        for ch in 0..chunks {
                            let (xv, ax) = if ch < cached {
                                (xvbuf[ch], axbuf[ch])
                            } else {
                                let xv = _mm256_loadu_si256(xr.add(ch * 32) as *const __m256i);
                                (xv, _mm256_abs_epi8(xv))
                            };
                            let wv = _mm256_loadu_si256(w0.add(ch * 32) as *const __m256i);
                            acc0 = $dpbusd(acc0, ax, _mm256_sign_epi8(wv, xv));
                            let wv = _mm256_loadu_si256(w1.add(ch * 32) as *const __m256i);
                            acc1 = $dpbusd(acc1, ax, _mm256_sign_epi8(wv, xv));
                            let wv = _mm256_loadu_si256(w2.add(ch * 32) as *const __m256i);
                            acc2 = $dpbusd(acc2, ax, _mm256_sign_epi8(wv, xv));
                            let wv = _mm256_loadu_si256(w3.add(ch * 32) as *const __m256i);
                            acc3 = $dpbusd(acc3, ax, _mm256_sign_epi8(wv, xv));
                        }
                        let sums = super::hsum4_epi32(acc0, acc1, acc2, acc3);
                        if base == k {
                            super::dequant4(sums, xs[i], ws, bias, out, i, j, n);
                        } else {
                            let mut tails = [0i32; 4];
                            _mm_storeu_si128(tails.as_mut_ptr() as *mut __m128i, sums);
                            for (col, &sv) in tails.iter().enumerate() {
                                let jj = j + col;
                                let wr = wq.as_ptr().add(jj * k);
                                let sum = sv
                                    + qdot(
                                        std::slice::from_raw_parts(xr.add(base), k - base),
                                        std::slice::from_raw_parts(wr.add(base), k - base),
                                    );
                                let deq = sum as f32 * (xs[i] * ws[jj]);
                                out[i * n + jj] = match bias {
                                    Some(b) => deq + b[jj],
                                    None => deq,
                                };
                            }
                        }
                        j += 4;
                    }
                    while j < n {
                        let wr = wq.as_ptr().add(j * k);
                        let mut acc = _mm256_setzero_si256();
                        for ch in 0..chunks {
                            let xv = _mm256_loadu_si256(xr.add(ch * 32) as *const __m256i);
                            let wv = _mm256_loadu_si256(wr.add(ch * 32) as *const __m256i);
                            acc = $dpbusd(acc, _mm256_abs_epi8(xv), _mm256_sign_epi8(wv, xv));
                        }
                        let mut lanes = [0i32; 8];
                        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
                        let mut sum: i32 = lanes.iter().sum();
                        sum += qdot(
                            std::slice::from_raw_parts(xr.add(base), k - base),
                            std::slice::from_raw_parts(wr.add(base), k - base),
                        );
                        let deq = sum as f32 * (xs[i] * ws[j]);
                        out[i * n + j] = match bias {
                            Some(b) => deq + b[j],
                            None => deq,
                        };
                        j += 1;
                    }
                }
            }
        };
    }

    vnni_qmatmul!(qmatmul_avxvnni, "avx2,avxvnni", _mm256_dpbusd_avx_epi32);
    vnni_qmatmul!(qmatmul_avx512vnni, "avx2,avx512vnni,avx512vl", _mm256_dpbusd_epi32);

    /// Int8 matmul — VNNI tier (see [`scalar::qmatmul_transb_into`];
    /// exact i32 accumulation, bit-identical to every other tier).
    #[allow(clippy::too_many_arguments)]
    pub fn qmatmul_transb_into(
        xq: &[i8],
        xs: &[f32],
        wq: &[i8],
        ws: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        assert!(xq.len() >= m * k && wq.len() >= n * k && out.len() >= m * n);
        assert_vnni();
        if std::arch::is_x86_feature_detected!("avxvnni") {
            unsafe { qmatmul_avxvnni(xq, xs, wq, ws, bias, out, m, k, n) }
        } else {
            unsafe { qmatmul_avx512vnni(xq, xs, wq, ws, bias, out, m, k, n) }
        }
    }
}

/// Dispatched `C = A * B^T` (`a`: `m x k`, `b`: `n x k`, `c`: `m x n`).
pub fn matmul_transb_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 | IsaTier::Vnni => avx2::matmul_transb_into(a, b, c, m, k, n),
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon => neon::matmul_transb_into(a, b, c, m, k, n),
        _ => scalar::matmul_transb_into(a, b, c, m, k, n),
    }
}

/// Dispatched `C = A * B` with `bt` = B pre-transposed to `k x n`.
pub fn matmul_xposed_into(a: &[f32], bt: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 | IsaTier::Vnni => avx2::matmul_xposed_into(a, bt, c, m, k, n),
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon => neon::matmul_xposed_into(a, bt, c, m, k, n),
        _ => scalar::matmul_xposed_into(a, bt, c, m, k, n),
    }
}

/// Packs a pre-transposed `k x n` matrix (`bt`, output columns
/// contiguous) into the layout the `matmul_xpacked_into` kernels read:
/// one sequential `k x 8` slab per full j-block (slab row `p` holds the
/// block's 8 columns at reduction index `p`), followed by each tail
/// column stored contiguously over `k`. Done once at weight
/// materialization: the plain layout walks columns at an `n`-element
/// stride, which for large `n` (the logits projection) lands every row
/// in the same few L1 sets and thrashes them; the packed slabs stream
/// sequentially instead.
pub fn pack_xposed_blocks(bt: &[f32], k: usize, n: usize) -> Vec<f32> {
    debug_assert!(bt.len() >= k * n);
    let nblocks = n / 8;
    let mut out = Vec::with_capacity(k * n);
    for jb in 0..nblocks {
        let j0 = jb * 8;
        for p in 0..k {
            out.extend_from_slice(&bt[p * n + j0..p * n + j0 + 8]);
        }
    }
    for j in nblocks * 8..n {
        for p in 0..k {
            out.push(bt[p * n + j]);
        }
    }
    out
}

/// Dispatched `C = A * B` with `bp` = B packed by
/// [`pack_xposed_blocks`]. Bit-identical to [`matmul_xposed_into`] on
/// the unpacked matrix — same per-element accumulation, cache-friendly
/// addresses.
pub fn matmul_xpacked_into(a: &[f32], bp: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 | IsaTier::Vnni => avx2::matmul_xpacked_into(a, bp, c, m, k, n),
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon => neon::matmul_xpacked_into(a, bp, c, m, k, n),
        _ => scalar::matmul_xpacked_into(a, bp, c, m, k, n),
    }
}

/// Dispatched batched `C = A * B^T` over `batch` independent problems at
/// the given strides. Per-element arithmetic is identical to the
/// unbatched kernel (the batch loop only selects offsets).
#[allow(clippy::too_many_arguments)]
pub fn matmul_transb_batched(
    a: &[f32],
    a_stride: usize,
    b: &[f32],
    b_stride: usize,
    c: &mut [f32],
    c_stride: usize,
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    let tier = active_tier();
    for bi in 0..batch {
        let av = &a[bi * a_stride..];
        let bv = &b[bi * b_stride..];
        let cv = &mut c[bi * c_stride..];
        match tier {
            #[cfg(target_arch = "x86_64")]
            IsaTier::Avx2 | IsaTier::Vnni => avx2::matmul_transb_into(av, bv, cv, m, k, n),
            #[cfg(target_arch = "aarch64")]
            IsaTier::Neon => neon::matmul_transb_into(av, bv, cv, m, k, n),
            _ => scalar::matmul_transb_into(av, bv, cv, m, k, n),
        }
    }
}

/// Dispatched row max (the max pass of the fused log-softmax+top-k; the
/// top-k insertion stays scalar on every tier because its order is the
/// contract).
pub fn row_max(row: &[f32]) -> f32 {
    if row.is_empty() {
        return f32::NEG_INFINITY;
    }
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 | IsaTier::Vnni => avx2::row_max(row),
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon => neon::row_max(row),
        _ => scalar::row_max(row),
    }
}

/// Dispatched `Σ exp(v - max)` — the normalizer pass of the fused
/// log-softmax+top-k, lane-split by 8 like the matmuls. Every tier uses
/// the shared polynomial `exp` ([`exp_lane`] and its AVX2 mirror), not
/// libm, so the sum is bit-identical across tiers. `max` must be the
/// row's max (finite inputs, `v - max ≤ 0`).
pub fn sum_exp(row: &[f32], max: f32) -> f32 {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 | IsaTier::Vnni => avx2::sum_exp(row, max),
        _ => scalar::sum_exp(row, max),
    }
}

/// Dispatched elementwise GELU over a buffer (the FFN activation).
/// Every tier evaluates the shared [`gelu_lane`] operation sequence —
/// polynomial `exp`, no libm — so results are bit-identical across
/// tiers, and identical to the public scalar `math::gelu`.
pub fn gelu_into(buf: &mut [f32]) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 | IsaTier::Vnni => avx2::gelu_into(buf),
        _ => scalar::gelu_into(buf),
    }
}

/// Dispatched per-row symmetric int8 quantization: `scale = absmax /
/// 127`, values round-to-nearest-even clamped to `[-127, 127]`.
/// Returns the scale (0.0 for an all-zero or non-finite row, with
/// `dst` zeroed). Every tier produces bit-identical output for finite
/// rows (see the module docs), so the int8 path's inputs — and
/// therefore its exact-integer outputs — do not depend on dispatch.
pub fn quantize_row_i8(src: &[f32], dst: &mut [i8]) -> f32 {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 | IsaTier::Vnni => avx2::quantize_row_i8(src, dst),
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon => neon::quantize_row_i8(src, dst),
        _ => scalar::quantize_row_i8(src, dst),
    }
}

/// Dispatched QK^T score row: `scores[si] = (q · keys[si*stride..]) *
/// scale` over `q.len()` elements per key row. The dot uses the shared
/// lane-split-by-8 / mul-then-add / tree-reduce semantics, so tiers
/// agree bit-for-bit; the `scale` multiply is one rounded op applied
/// after the reduce on every tier.
pub fn attn_scores_into(
    q: &[f32],
    keys: &[f32],
    stride: usize,
    scale: f32,
    scores: &mut [f32],
) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 | IsaTier::Vnni => avx2::attn_scores_into(q, keys, stride, scale, scores),
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon => neon::attn_scores_into(q, keys, stride, scale, scores),
        _ => scalar::attn_scores_into(q, keys, stride, scale, scores),
    }
}

/// Dispatched in-place softmax over one row: VMAXPS-semantics max, the
/// shared polynomial exp ([`exp_lane`] / its AVX2 mirror — no libm),
/// a lane-split-by-8 sum, and a `1 / sum.max(1e-12)` normalize. `-inf`
/// entries (masked attention slots) come out exactly `+0.0`, which the
/// weighted-sum kernel then skips. NEON falls back to the scalar path
/// (like `sum_exp`) — bit-identical by definition.
pub fn softmax_into(row: &mut [f32]) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 | IsaTier::Vnni => avx2::softmax_into(row),
        _ => scalar::softmax_into(row),
    }
}

/// Dispatched softmax-weighted V accumulation: `ctx[j] += Σ_si
/// probs[si] * values[si*stride + j]`, `si` ascending, zero weights
/// skipped on every tier. Elementwise over `j`, so tiers are
/// bit-identical by construction. `ctx` is accumulated into (callers
/// zero or seed it).
pub fn attn_weighted_sum_into(probs: &[f32], values: &[f32], stride: usize, ctx: &mut [f32]) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 | IsaTier::Vnni => {
            avx2::attn_weighted_sum_into(probs, values, stride, ctx)
        }
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon => neon::attn_weighted_sum_into(probs, values, stride, ctx),
        _ => scalar::attn_weighted_sum_into(probs, values, stride, ctx),
    }
}

/// Per-row layer-norm function pointer for the active tier (resolved
/// once per matrix, not per row).
type LnRowFn = fn(&[f32], &[f32], &[f32], &mut [f32]) -> (f32, f32);

fn ln_row_fn() -> LnRowFn {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 | IsaTier::Vnni => avx2::layer_norm_row_into,
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon => neon::layer_norm_row_into,
        _ => scalar::layer_norm_row_into,
    }
}

/// Dispatched layer norm over `t` rows of width `d`: per row,
/// lane-split-by-8 mean and variance sums, `rstd = 1 / sqrt(var +
/// 1e-5)`, then `out = gamma ⊙ (x - mean) * rstd + beta`. Bit-identical
/// across tiers (every non-lane-split step is an exactly-rounded
/// scalar IEEE op shared by all tiers).
pub fn layer_norm_into(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    t: usize,
    d: usize,
    out: &mut [f32],
) {
    debug_assert!(x.len() >= t * d && out.len() >= t * d);
    let f = ln_row_fn();
    for r in 0..t {
        f(&x[r * d..(r + 1) * d], gamma, beta, &mut out[r * d..(r + 1) * d]);
    }
}

/// [`layer_norm_into`] that also records each row's `(mean, rstd)` for
/// the training path's backward caches. Same per-row kernel — the
/// inference wrapper and this one cannot diverge.
#[allow(clippy::too_many_arguments)]
pub fn layer_norm_stats_into(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    t: usize,
    d: usize,
    out: &mut [f32],
    means: &mut [f32],
    rstds: &mut [f32],
) {
    debug_assert!(x.len() >= t * d && out.len() >= t * d);
    debug_assert!(means.len() >= t && rstds.len() >= t);
    let f = ln_row_fn();
    for r in 0..t {
        let (mean, rstd) = f(&x[r * d..(r + 1) * d], gamma, beta, &mut out[r * d..(r + 1) * d]);
        means[r] = mean;
        rstds[r] = rstd;
    }
}

/// Dispatched int8 `C = Xq * Wq^T` with f32 dequant-on-accumulate.
/// `xq`: `m x k` activations with per-row scales `xs`; `wq`: `n x k`
/// weights with per-row scales `ws`.
#[allow(clippy::too_many_arguments)]
pub fn qmatmul_transb_into(
    xq: &[i8],
    xs: &[f32],
    wq: &[i8],
    ws: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Vnni => vnni::qmatmul_transb_into(xq, xs, wq, ws, bias, out, m, k, n),
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2 => avx2::qmatmul_transb_into(xq, xs, wq, ws, bias, out, m, k, n),
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon => neon::qmatmul_transb_into(xq, xs, wq, ws, bias, out, m, k, n),
        _ => scalar::qmatmul_transb_into(xq, xs, wq, ws, bias, out, m, k, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn tier_knob_round_trips() {
        let prev = active_tier();
        assert_eq!(set_tier(IsaTier::Scalar), IsaTier::Scalar);
        assert_eq!(active_tier(), IsaTier::Scalar);
        // Unsupported requests clamp to scalar instead of crashing.
        let installed = set_tier(IsaTier::Neon);
        if !cfg!(target_arch = "aarch64") {
            assert_eq!(installed, IsaTier::Scalar);
        }
        set_tier(prev);
    }

    #[test]
    fn transb_and_xposed_orientations_agree_bitwise() {
        // Same projection through both weight orientations must give the
        // same bits: the scalar decode path uses transb, the batched
        // path uses xposed.
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (2, 7, 5), (3, 16, 8), (4, 19, 13)] {
            let a = fill(1, m * k);
            let w = fill(2, n * k); // n x k, transb orientation
            let mut wt = vec![0.0f32; k * n];
            for r in 0..n {
                for p in 0..k {
                    wt[p * n + r] = w[r * k + p];
                }
            }
            let mut c1 = vec![0.0f32; m * n];
            let mut c2 = vec![0.0f32; m * n];
            scalar::matmul_transb_into(&a, &w, &mut c1, m, k, n);
            scalar::matmul_xposed_into(&a, &wt, &mut c2, m, k, n);
            for (x, y) in c1.iter().zip(&c2) {
                assert_eq!(x.to_bits(), y.to_bits(), "shape ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn quantize_round_trips_within_bound() {
        let src = fill(7, 33);
        let mut q = vec![0i8; 33];
        let scale = quantize_row_i8(&src, &mut q);
        assert!(scale > 0.0);
        for (&v, &qq) in src.iter().zip(&q) {
            assert!((v - qq as f32 * scale).abs() <= scale * 0.5 + 1e-6);
        }
        let zeros = vec![0.0f32; 8];
        let mut qz = vec![1i8; 8];
        assert_eq!(quantize_row_i8(&zeros, &mut qz), 0.0);
        assert!(qz.iter().all(|&v| v == 0));
    }
}
