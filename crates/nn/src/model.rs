//! The sequence-to-sequence Transformer (BART-style, pre-LayerNorm),
//! with hand-written forward and backward passes.
//!
//! Architecture per the paper §V-B/§V-C: token + learned positional
//! embeddings shared between encoder, decoder and the output projection;
//! encoder blocks `h̄ = h + MHA(LN(h)); h = h̄ + FFN(LN(h̄))`; decoder blocks
//! with an extra encoder-decoder attention; causal masking in the decoder;
//! cross-entropy with teacher forcing; **no dropout** (weight decay only).
//!
//! Backward passes are written out per layer instead of via an autograd
//! tape — the architecture is fixed, so this is less machinery, and every
//! layer is finite-difference checked in the tests.

use crate::math::*;
use crate::store::{PId, ParamStore, QuantizedTensor};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Inference weight backend: which numeric format the batched decode and
/// encode paths project through. Training always runs f32; the backend
/// only changes how weights are materialized for inference, below the
/// engine seam — `crates/serve` never inspects it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Backend {
    /// Full-precision f32 weights (pre-transposed), the default.
    #[default]
    F32,
    /// Per-row symmetric int8 weights with i8×i8→i32 dot products and
    /// f32 dequant-on-accumulate.
    Int8,
}

impl Backend {
    /// Stable lowercase name for metrics and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Backend::F32 => "f32",
            Backend::Int8 => "int8",
        }
    }
}

/// Hyperparameters of the seq2seq model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Vocabulary size (shared between source and target).
    pub vocab: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads (must divide `d_model`).
    pub n_heads: usize,
    /// Feed-forward inner width.
    pub d_ff: usize,
    /// Encoder layers.
    pub enc_layers: usize,
    /// Decoder layers.
    pub dec_layers: usize,
    /// Maximum sequence length (positional table size).
    pub max_len: usize,
    /// Inference weight backend (defaults to f32 so pre-knob artifacts
    /// deserialize unchanged).
    #[serde(default)]
    pub backend: Backend,
}

impl TransformerConfig {
    /// A deliberately small configuration that trains in minutes on one CPU
    /// core — the reproduction-scale stand-in for the paper's 200M model.
    pub fn small(vocab: usize) -> Self {
        TransformerConfig {
            vocab,
            d_model: 64,
            n_heads: 4,
            d_ff: 128,
            enc_layers: 2,
            dec_layers: 2,
            max_len: 160,
            backend: Backend::F32,
        }
    }

    /// A unit-test sized configuration.
    pub fn tiny(vocab: usize) -> Self {
        TransformerConfig {
            vocab,
            d_model: 16,
            n_heads: 2,
            d_ff: 32,
            enc_layers: 1,
            dec_layers: 1,
            max_len: 24,
            backend: Backend::F32,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Attn {
    wq: PId,
    bq: PId,
    wk: PId,
    bk: PId,
    wv: PId,
    bv: PId,
    wo: PId,
    bo: PId,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Ln {
    gamma: PId,
    beta: PId,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Ffn {
    w1: PId,
    b1: PId,
    w2: PId,
    b2: PId,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct EncLayer {
    ln1: Ln,
    attn: Attn,
    ln2: Ln,
    ffn: Ffn,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct DecLayer {
    ln1: Ln,
    self_attn: Attn,
    ln2: Ln,
    cross_attn: Attn,
    ln3: Ln,
    ffn: Ffn,
}

/// The model: configuration, parameter store, and parameter handles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Seq2Seq {
    /// Hyperparameters.
    pub cfg: TransformerConfig,
    store: ParamStore,
    embed: PId,
    pos: PId,
    enc: Vec<EncLayer>,
    dec: Vec<DecLayer>,
    ln_enc_out: Ln,
    ln_dec_out: Ln,
    /// Train-time dropout probability on every residual branch. The paper
    /// trains with **no dropout** (weight decay only, §V); this knob exists
    /// so that choice can be ablated. `0.0` (the default) is a strict
    /// no-op: no masks are sampled and the arithmetic is bit-identical.
    #[serde(default)]
    dropout: f32,
    #[serde(default)]
    drop_seed: u64,
    #[serde(default)]
    drop_step: u64,
}

impl Seq2Seq {
    /// Initializes a model with N(0, 0.02) weights from `seed`.
    pub fn new(cfg: TransformerConfig, seed: u64) -> Self {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut s = ParamStore::new();
        let d = cfg.d_model;
        let std = 0.02f32;
        fn make_attn(
            s: &mut ParamStore,
            rng: &mut rand_chacha::ChaCha8Rng,
            d: usize,
            std: f32,
        ) -> Attn {
            Attn {
                wq: s.alloc(d * d, std, rng),
                bq: s.alloc_zeros(d),
                wk: s.alloc(d * d, std, rng),
                bk: s.alloc_zeros(d),
                wv: s.alloc(d * d, std, rng),
                bv: s.alloc_zeros(d),
                wo: s.alloc(d * d, std, rng),
                bo: s.alloc_zeros(d),
            }
        }
        let mut enc = Vec::new();
        let mut dec = Vec::new();
        let embed = {
            let mut rng2 = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x9e37_79b9);
            s.alloc(cfg.vocab * d, std, &mut rng2)
        };
        let pos = {
            let mut rng2 = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x85eb_ca6b);
            s.alloc(cfg.max_len * d, std, &mut rng2)
        };
        for _ in 0..cfg.enc_layers {
            enc.push(EncLayer {
                ln1: Ln { gamma: s.alloc_ones(d), beta: s.alloc_zeros(d) },
                attn: make_attn(&mut s, &mut rng, d, std),
                ln2: Ln { gamma: s.alloc_ones(d), beta: s.alloc_zeros(d) },
                ffn: Ffn {
                    w1: s.alloc(cfg.d_ff * d, std, &mut rng),
                    b1: s.alloc_zeros(cfg.d_ff),
                    w2: s.alloc(d * cfg.d_ff, std, &mut rng),
                    b2: s.alloc_zeros(d),
                },
            });
        }
        for _ in 0..cfg.dec_layers {
            dec.push(DecLayer {
                ln1: Ln { gamma: s.alloc_ones(d), beta: s.alloc_zeros(d) },
                self_attn: make_attn(&mut s, &mut rng, d, std),
                ln2: Ln { gamma: s.alloc_ones(d), beta: s.alloc_zeros(d) },
                cross_attn: make_attn(&mut s, &mut rng, d, std),
                ln3: Ln { gamma: s.alloc_ones(d), beta: s.alloc_zeros(d) },
                ffn: Ffn {
                    w1: s.alloc(cfg.d_ff * d, std, &mut rng),
                    b1: s.alloc_zeros(cfg.d_ff),
                    w2: s.alloc(d * cfg.d_ff, std, &mut rng),
                    b2: s.alloc_zeros(d),
                },
            });
        }
        let ln_enc_out = Ln { gamma: s.alloc_ones(d), beta: s.alloc_zeros(d) };
        let ln_dec_out = Ln { gamma: s.alloc_ones(d), beta: s.alloc_zeros(d) };
        Seq2Seq {
            cfg,
            store: s,
            embed,
            pos,
            enc,
            dec,
            ln_enc_out,
            ln_dec_out,
            dropout: 0.0,
            drop_seed: 0,
            drop_step: 0,
        }
    }

    /// Enables inverted dropout with probability `p` on every residual
    /// branch during training (ablation of the paper's dropout-free recipe).
    /// Masks are sampled deterministically from `seed`, so runs reproduce.
    /// Inference paths ([`Seq2Seq::encode`], decoding) never apply dropout.
    pub fn set_dropout(&mut self, p: f32, seed: u64) {
        self.dropout = p.clamp(0.0, 0.95);
        self.drop_seed = seed;
        self.drop_step = 0;
    }

    /// The configured train-time dropout probability.
    pub fn dropout(&self) -> f32 {
        self.dropout
    }

    /// Samples the next inverted-dropout mask (entries `0` or `1/(1-p)`),
    /// or `None` when dropout is disabled.
    fn next_mask(&mut self, len: usize) -> Option<Vec<f32>> {
        if self.dropout <= 0.0 {
            return None;
        }
        use rand::Rng;
        let keep = 1.0 - self.dropout;
        let scale = 1.0 / keep;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(
            self.drop_seed ^ self.drop_step.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        self.drop_step = self.drop_step.wrapping_add(1);
        Some((0..len).map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 }).collect())
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.store.num_params()
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.store.zero_grads();
    }

    /// One AdamW update; `scale` divides accumulated gradients (1/batch).
    pub fn adam_step(&mut self, lr: f32, weight_decay: f32, scale: f32) {
        // Clip to unit norm for stability on tiny batches.
        let norm = self.store.grad_norm() * scale;
        if norm > 1.0 {
            self.store.scale_grads(1.0 / norm);
        }
        self.store.adam_step(lr, weight_decay, scale);
    }

    // ---- forward primitives (shared by train and inference) ----

    fn embed_seq(&self, ids: &[u32]) -> Vec<f32> {
        let d = self.cfg.d_model;
        let e = self.store.data(self.embed);
        let p = self.store.data(self.pos);
        let mut out = vec![0.0f32; ids.len() * d];
        for (t, &id) in ids.iter().enumerate() {
            let row = (id as usize).min(self.cfg.vocab - 1) * d;
            let prow = t.min(self.cfg.max_len - 1) * d;
            for j in 0..d {
                out[t * d + j] = e[row + j] + p[prow + j];
            }
        }
        out
    }

    fn linear(&self, w: PId, b: PId, x: &[f32], t: usize, din: usize, dout: usize) -> Vec<f32> {
        let mut y = vec![0.0f32; t * dout];
        matmul_transb_into(x, self.store.data(w), &mut y, t, din, dout);
        let bias = self.store.data(b);
        for row in 0..t {
            for j in 0..dout {
                y[row * dout + j] += bias[j];
            }
        }
        y
    }

    fn layer_norm(&self, ln: &Ln, x: &[f32], t: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let d = self.cfg.d_model;
        let gamma = self.store.data(ln.gamma);
        let beta = self.store.data(ln.beta);
        let mut y = vec![0.0f32; x.len()];
        let mut means = vec![0.0f32; t];
        let mut rstds = vec![0.0f32; t];
        crate::kernels::layer_norm_stats_into(
            x, gamma, beta, t, d, &mut y, &mut means, &mut rstds,
        );
        (y, means, rstds)
    }

    /// Multi-head attention forward; returns `(output, cache)`.
    fn attention(
        &self,
        a: &Attn,
        x: &[f32],
        kv: &[f32],
        t: usize,
        s: usize,
        causal: bool,
    ) -> (Vec<f32>, AttnCache) {
        let d = self.cfg.d_model;
        let h = self.cfg.n_heads;
        let dh = d / h;
        let scale = 1.0 / (dh as f32).sqrt();
        let q = self.linear(a.wq, a.bq, x, t, d, d);
        let k = self.linear(a.wk, a.bk, kv, s, d, d);
        let v = self.linear(a.wv, a.bv, kv, s, d, d);
        let mut probs = vec![0.0f32; h * t * s];
        let mut ctx = vec![0.0f32; t * d];
        for head in 0..h {
            let off = head * dh;
            let p = &mut probs[head * t * s..(head + 1) * t * s];
            for ti in 0..t {
                // Causal rows softmax the prefix only; the masked tail
                // stays exactly 0.0 in the cached probs (same values the
                // old `-inf`-then-softmax pass produced, since
                // `exp(-inf) = +0.0` neither moves the row max nor the
                // non-negative lane sums).
                let limit = if causal { (ti + 1).min(s) } else { s };
                let prow = &mut p[ti * s..(ti + 1) * s];
                if limit == 0 {
                    continue;
                }
                crate::kernels::attn_scores_into(
                    &q[ti * d + off..ti * d + off + dh],
                    &k[off..],
                    d,
                    scale,
                    &mut prow[..limit],
                );
                crate::kernels::softmax_into(&mut prow[..limit]);
                prow[limit..].fill(0.0);
                crate::kernels::attn_weighted_sum_into(
                    &prow[..limit],
                    &v[off..],
                    d,
                    &mut ctx[ti * d + off..ti * d + off + dh],
                );
            }
        }
        let out = self.linear(a.wo, a.bo, &ctx, t, d, d);
        (out, AttnCache { q, k, v, probs, ctx })
    }

    /// Attention backward: accumulates parameter grads, returns
    /// `(dx, dkv)`.
    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
    fn attention_bwd(
        &mut self,
        a: &Attn,
        cache: &AttnCache,
        x: &[f32],
        kv: &[f32],
        t: usize,
        s: usize,
        dout: &[f32],
    ) -> (Vec<f32>, Vec<f32>) {
        let d = self.cfg.d_model;
        let h = self.cfg.n_heads;
        let dh = d / h;
        let scale = 1.0 / (dh as f32).sqrt();
        // Output projection backward.
        let mut dctx = vec![0.0f32; t * d];
        matmul_into(dout, self.store.data(a.wo), &mut dctx, t, d, d);
        let mut dwo = vec![0.0f32; d * d];
        matmul_transa_into(dout, &cache.ctx, &mut dwo, t, d, d);
        self.store.add_grad(a.wo, &dwo);
        self.store.add_grad(a.bo, &col_sums(dout, t, d));
        let mut dq = vec![0.0f32; t * d];
        let mut dk = vec![0.0f32; s * d];
        let mut dv = vec![0.0f32; s * d];
        for head in 0..h {
            let off = head * dh;
            let p = &cache.probs[head * t * s..(head + 1) * t * s];
            for ti in 0..t {
                // dA and softmax backward for this row.
                let mut da = vec![0.0f32; s];
                for si in 0..s {
                    let mut acc = 0.0f32;
                    for j in 0..dh {
                        acc += dctx[ti * d + off + j] * cache.v[si * d + off + j];
                    }
                    da[si] = acc;
                }
                let row = &p[ti * s..(ti + 1) * s];
                let dot: f32 = row.iter().zip(&da).map(|(a, b)| a * b).sum();
                for si in 0..s {
                    let dscore = row[si] * (da[si] - dot);
                    if dscore == 0.0 {
                        continue;
                    }
                    for j in 0..dh {
                        dq[ti * d + off + j] += dscore * cache.k[si * d + off + j] * scale;
                        dk[si * d + off + j] += dscore * cache.q[ti * d + off + j] * scale;
                    }
                }
                // dV.
                for si in 0..s {
                    let w = row[si];
                    if w == 0.0 {
                        continue;
                    }
                    for j in 0..dh {
                        dv[si * d + off + j] += w * dctx[ti * d + off + j];
                    }
                }
            }
        }
        // Project back through the three input linears (scratch buffers
        // reused for the weight grads; the allocating matmul wrappers are
        // test-only).
        let mut dw = vec![0.0f32; d * d];
        let mut dx = vec![0.0f32; t * d];
        matmul_into(&dq, self.store.data(a.wq), &mut dx, t, d, d);
        matmul_transa_into(&dq, x, &mut dw, t, d, d);
        self.store.add_grad(a.wq, &dw);
        self.store.add_grad(a.bq, &col_sums(&dq, t, d));
        let mut dkv = vec![0.0f32; s * d];
        matmul_into(&dk, self.store.data(a.wk), &mut dkv, s, d, d);
        matmul_transa_into(&dk, kv, &mut dw, s, d, d);
        self.store.add_grad(a.wk, &dw);
        self.store.add_grad(a.bk, &col_sums(&dk, s, d));
        let mut dkv2 = vec![0.0f32; s * d];
        matmul_into(&dv, self.store.data(a.wv), &mut dkv2, s, d, d);
        matmul_transa_into(&dv, kv, &mut dw, s, d, d);
        self.store.add_grad(a.wv, &dw);
        self.store.add_grad(a.bv, &col_sums(&dv, s, d));
        for (a_, b_) in dkv.iter_mut().zip(&dkv2) {
            *a_ += b_;
        }
        // Self-attention: x and kv are the same tensor; caller merges.
        if std::ptr::eq(x.as_ptr(), kv.as_ptr()) {
            for (a_, b_) in dx.iter_mut().zip(&dkv) {
                *a_ += b_;
            }
            dkv.iter_mut().for_each(|v| *v = 0.0);
        }
        (dx, dkv)
    }

    fn layer_norm_bwd(
        &mut self,
        ln: &Ln,
        x: &[f32],
        means: &[f32],
        rstds: &[f32],
        dy: &[f32],
        t: usize,
    ) -> Vec<f32> {
        let d = self.cfg.d_model;
        let gamma = self.store.data(ln.gamma).to_vec();
        let mut dgamma = vec![0.0f32; d];
        let mut dbeta = vec![0.0f32; d];
        let mut dx = vec![0.0f32; x.len()];
        for r in 0..t {
            let mean = means[r];
            let rstd = rstds[r];
            let xr = &x[r * d..(r + 1) * d];
            let dyr = &dy[r * d..(r + 1) * d];
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            let mut xhat = vec![0.0f32; d];
            let mut dxhat = vec![0.0f32; d];
            for j in 0..d {
                xhat[j] = (xr[j] - mean) * rstd;
                dgamma[j] += dyr[j] * xhat[j];
                dbeta[j] += dyr[j];
                dxhat[j] = dyr[j] * gamma[j];
                sum_dxhat += dxhat[j];
                sum_dxhat_xhat += dxhat[j] * xhat[j];
            }
            let n = d as f32;
            for j in 0..d {
                dx[r * d + j] =
                    rstd / n * (n * dxhat[j] - sum_dxhat - xhat[j] * sum_dxhat_xhat);
            }
        }
        self.store.add_grad(ln.gamma, &dgamma);
        self.store.add_grad(ln.beta, &dbeta);
        dx
    }

    fn ffn_fwd(&self, f: &Ffn, x: &[f32], t: usize) -> (Vec<f32>, Vec<f32>) {
        let d = self.cfg.d_model;
        let dff = self.cfg.d_ff;
        let hidden = self.linear(f.w1, f.b1, x, t, d, dff);
        let mut act = hidden.clone();
        act.iter_mut().for_each(|v| *v = gelu(*v));
        let out = self.linear(f.w2, f.b2, &act, t, dff, d);
        (out, hidden)
    }

    fn ffn_bwd(
        &mut self,
        f: &Ffn,
        x: &[f32],
        hidden: &[f32],
        dy: &[f32],
        t: usize,
    ) -> Vec<f32> {
        let d = self.cfg.d_model;
        let dff = self.cfg.d_ff;
        let mut act = hidden.to_vec();
        act.iter_mut().for_each(|v| *v = gelu(*v));
        let mut dact = vec![0.0f32; t * dff];
        matmul_into(dy, self.store.data(f.w2), &mut dact, t, d, dff);
        let mut dw = vec![0.0f32; d * dff];
        matmul_transa_into(dy, &act, &mut dw, t, d, dff);
        self.store.add_grad(f.w2, &dw);
        self.store.add_grad(f.b2, &col_sums(dy, t, d));
        let mut dhidden = dact;
        for (dh, h) in dhidden.iter_mut().zip(hidden) {
            *dh *= gelu_grad(*h);
        }
        let mut dx = vec![0.0f32; t * d];
        matmul_into(&dhidden, self.store.data(f.w1), &mut dx, t, dff, d);
        matmul_transa_into(&dhidden, x, &mut dw, t, dff, d);
        self.store.add_grad(f.w1, &dw);
        self.store.add_grad(f.b1, &col_sums(&dhidden, t, dff));
        dx
    }

    /// Encoder forward (inference path, no caches kept).
    pub fn encode(&self, src: &[u32]) -> Vec<f32> {
        let t = src.len();
        let mut h = self.embed_seq(src);
        for layer in &self.enc {
            let (ln1, ..) = self.layer_norm(&layer.ln1, &h, t);
            let (att, _) = self.attention(&layer.attn, &ln1, &ln1, t, t, false);
            add_into(&mut h, &att);
            let (ln2, ..) = self.layer_norm(&layer.ln2, &h, t);
            let (ff, _) = self.ffn_fwd(&layer.ffn, &ln2, t);
            add_into(&mut h, &ff);
        }
        let (out, ..) = self.layer_norm(&self.ln_enc_out, &h, t);
        out
    }

    /// Decoder hidden states for a full prefix (inference, no caches).
    fn decoder_hidden(&self, mem: &[f32], s: usize, tgt_prefix: &[u32]) -> Vec<f32> {
        let t = tgt_prefix.len();
        let mut h = self.embed_seq(tgt_prefix);
        for layer in &self.dec {
            let (ln1, ..) = self.layer_norm(&layer.ln1, &h, t);
            let (att, _) = self.attention(&layer.self_attn, &ln1, &ln1, t, t, true);
            add_into(&mut h, &att);
            let (ln2, ..) = self.layer_norm(&layer.ln2, &h, t);
            let (catt, _) = self.attention(&layer.cross_attn, &ln2, mem, t, s, false);
            add_into(&mut h, &catt);
            let (ln3, ..) = self.layer_norm(&layer.ln3, &h, t);
            let (ff, _) = self.ffn_fwd(&layer.ffn, &ln3, t);
            add_into(&mut h, &ff);
        }
        let (hn, ..) = self.layer_norm(&self.ln_dec_out, &h, t);
        hn
    }

    /// Decoder forward over a full prefix; returns logits of the **last**
    /// position only (inference).
    pub fn decode_last_logits(&self, mem: &[f32], s: usize, tgt_prefix: &[u32]) -> Vec<f32> {
        let t = tgt_prefix.len();
        let hn = self.decoder_hidden(mem, s, tgt_prefix);
        let d = self.cfg.d_model;
        let last = &hn[(t - 1) * d..t * d];
        let mut logits = vec![0.0f32; self.cfg.vocab];
        matmul_transb_into(
            last,
            self.store.data(self.embed),
            &mut logits,
            1,
            d,
            self.cfg.vocab,
        );
        logits
    }

    /// Decoder forward over a full prefix; returns the `t × vocab` logits of
    /// **every** position (teacher-forced evaluation).
    pub fn decode_all_logits(&self, mem: &[f32], s: usize, tgt_prefix: &[u32]) -> Vec<f32> {
        let hn = self.decoder_hidden(mem, s, tgt_prefix);
        let d = self.cfg.d_model;
        let t = tgt_prefix.len();
        let mut logits = vec![0.0f32; t * self.cfg.vocab];
        matmul_transb_into(&hn, self.store.data(self.embed), &mut logits, t, d, self.cfg.vocab);
        logits
    }

    /// Forward-only mean cross-entropy of a teacher-forced pair — the
    /// held-out validation loss used by the ablation harness. Never applies
    /// dropout and never touches gradients.
    pub fn eval_loss(&self, src: &[u32], dec_input: &[u32], labels: &[u32]) -> f32 {
        assert_eq!(dec_input.len(), labels.len(), "teacher forcing alignment");
        let src: Vec<u32> = src.iter().take(self.cfg.max_len).copied().collect();
        let mem = self.encode(&src);
        let t = dec_input.len();
        let v = self.cfg.vocab;
        let mut logits = self.decode_all_logits(&mem, src.len(), dec_input);
        softmax_rows(&mut logits, t, v);
        let mut loss = 0.0f32;
        for (ti, &label) in labels.iter().enumerate() {
            loss -= logits[ti * v + label as usize].max(1e-9).ln();
        }
        loss / t as f32
    }

    /// Teacher-forced next-token accuracy: the fraction of positions where
    /// the argmax prediction equals the label.
    pub fn eval_token_accuracy(&self, src: &[u32], dec_input: &[u32], labels: &[u32]) -> f64 {
        assert_eq!(dec_input.len(), labels.len(), "teacher forcing alignment");
        if labels.is_empty() {
            return 0.0;
        }
        let src: Vec<u32> = src.iter().take(self.cfg.max_len).copied().collect();
        let mem = self.encode(&src);
        let t = dec_input.len();
        let v = self.cfg.vocab;
        let logits = self.decode_all_logits(&mem, src.len(), dec_input);
        let mut hits = 0usize;
        for (ti, &label) in labels.iter().enumerate() {
            let row = &logits[ti * v..(ti + 1) * v];
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i as u32)
                .unwrap_or(0);
            if argmax == label {
                hits += 1;
            }
        }
        hits as f64 / t as f64
    }

    /// One teacher-forced training example: forward, loss, backward
    /// (gradients accumulate). `src` is the tokenized assembly, `tgt` the
    /// tokenized C; BOS/EOS handling is the caller's job via
    /// `decoder_input = [BOS] ++ tgt`, `labels = tgt ++ [EOS]`.
    pub fn train_pair(&mut self, src: &[u32], dec_input: &[u32], labels: &[u32]) -> f32 {
        assert_eq!(dec_input.len(), labels.len(), "teacher forcing alignment");
        let d = self.cfg.d_model;
        let s = src.len();
        let t = dec_input.len();
        // Residual-branch dropout masks, pre-sampled so the borrow of the
        // layer lists below stays immutable. `None` everywhere at p = 0.
        #[allow(clippy::type_complexity)]
        let enc_masks: Vec<(Option<Vec<f32>>, Option<Vec<f32>>)> = (0..self.cfg.enc_layers)
            .map(|_| (self.next_mask(s * d), self.next_mask(s * d)))
            .collect();
        #[allow(clippy::type_complexity)]
        let dec_masks: Vec<(Option<Vec<f32>>, Option<Vec<f32>>, Option<Vec<f32>>)> =
            (0..self.cfg.dec_layers)
                .map(|_| (self.next_mask(t * d), self.next_mask(t * d), self.next_mask(t * d)))
                .collect();
        // ---- encoder forward with caches ----
        let mut h_enc = self.embed_seq(src);
        let mut enc_caches = Vec::new();
        for (layer, masks) in self.enc.iter().zip(&enc_masks) {
            let x0 = h_enc.clone();
            let (ln1, m1, r1) = self.layer_norm(&layer.ln1, &x0, s);
            let (mut att, acache) = self.attention(&layer.attn, &ln1, &ln1, s, s, false);
            apply_mask(&mut att, &masks.0);
            add_into(&mut h_enc, &att);
            let x1 = h_enc.clone();
            let (ln2, m2, r2) = self.layer_norm(&layer.ln2, &x1, s);
            let (mut ff, hidden) = self.ffn_fwd(&layer.ffn, &ln2, s);
            apply_mask(&mut ff, &masks.1);
            add_into(&mut h_enc, &ff);
            enc_caches.push((x0, ln1, m1, r1, acache, x1, ln2, m2, r2, hidden));
        }
        let pre_enc_ln = h_enc.clone();
        let (mem, menc, renc) = self.layer_norm(&self.ln_enc_out, &pre_enc_ln, s);
        // ---- decoder forward with caches ----
        let mut h = self.embed_seq(dec_input);
        let mut dec_caches = Vec::new();
        for (layer, masks) in self.dec.iter().zip(&dec_masks) {
            let x0 = h.clone();
            let (ln1, m1, r1) = self.layer_norm(&layer.ln1, &x0, t);
            let (mut att, self_cache) =
                self.attention(&layer.self_attn, &ln1, &ln1, t, t, true);
            apply_mask(&mut att, &masks.0);
            add_into(&mut h, &att);
            let x1 = h.clone();
            let (ln2, m2, r2) = self.layer_norm(&layer.ln2, &x1, t);
            let (mut catt, cross_cache) =
                self.attention(&layer.cross_attn, &ln2, &mem, t, s, false);
            apply_mask(&mut catt, &masks.1);
            add_into(&mut h, &catt);
            let x2 = h.clone();
            let (ln3, m3, r3) = self.layer_norm(&layer.ln3, &x2, t);
            let (mut ff, hidden) = self.ffn_fwd(&layer.ffn, &ln3, t);
            apply_mask(&mut ff, &masks.2);
            add_into(&mut h, &ff);
            dec_caches.push((
                x0,
                ln1,
                m1,
                r1,
                self_cache,
                x1,
                ln2,
                m2,
                r2,
                cross_cache,
                x2,
                ln3,
                m3,
                r3,
                hidden,
            ));
        }
        let pre_dec_ln = h.clone();
        let (hn, mdec, rdec) = self.layer_norm(&self.ln_dec_out, &pre_dec_ln, t);
        // ---- loss: tied-output softmax cross-entropy ----
        let v = self.cfg.vocab;
        let mut logits = vec![0.0f32; t * v];
        matmul_transb_into(&hn, self.store.data(self.embed), &mut logits, t, d, v);
        softmax_rows(&mut logits, t, v);
        let mut loss = 0.0f32;
        let mut dlogits = logits; // becomes (p - onehot)/t
        for (ti, &label) in labels.iter().enumerate() {
            let p = dlogits[ti * v + label as usize].max(1e-9);
            loss -= p.ln();
            dlogits[ti * v + label as usize] -= 1.0;
        }
        let inv_t = 1.0 / t as f32;
        dlogits.iter_mut().for_each(|g| *g *= inv_t);
        loss *= inv_t;
        // ---- backward ----
        // Tied output: dhn = dlogits @ E; dE += dlogits^T @ hn.
        let mut dhn = vec![0.0f32; t * d];
        matmul_into(&dlogits, self.store.data(self.embed), &mut dhn, t, v, d);
        let mut de_out = vec![0.0f32; v * d];
        matmul_transa_into(&dlogits, &hn, &mut de_out, t, v, d);
        self.store.add_grad(self.embed, &de_out);
        let ln_dec_out = self.ln_dec_out.clone();
        let mut dh = self.layer_norm_bwd(&ln_dec_out, &pre_dec_ln, &mdec, &rdec, &dhn, t);
        let mut dmem_total = vec![0.0f32; mem.len()];
        for ((layer, cache), masks) in
            self.dec.clone().iter().zip(dec_caches.iter()).zip(dec_masks.iter()).rev()
        {
            let (
                x0,
                ln1,
                m1,
                r1,
                self_cache,
                x1,
                ln2,
                m2,
                r2,
                cross_cache,
                x2,
                ln3,
                m3,
                r3,
                hidden,
            ) = cache;
            // FFN residual.
            let dff_out = masked(&dh, &masks.2);
            let dln3 = self.ffn_bwd(&layer.ffn, ln3, hidden, &dff_out, t);
            let dx2 = self.layer_norm_bwd(&layer.ln3, x2, m3, r3, &dln3, t);
            add_into(&mut dh, &dx2);
            // Cross-attention residual.
            let dcatt = masked(&dh, &masks.1);
            let (dln2, dmem) =
                self.attention_bwd(&layer.cross_attn, cross_cache, ln2, &mem, t, s, &dcatt);
            add_into(&mut dmem_total, &dmem);
            let dx1 = self.layer_norm_bwd(&layer.ln2, x1, m2, r2, &dln2, t);
            add_into(&mut dh, &dx1);
            // Self-attention residual.
            let datt = masked(&dh, &masks.0);
            let (dln1, _) =
                self.attention_bwd(&layer.self_attn, self_cache, ln1, ln1, t, t, &datt);
            let dx0 = self.layer_norm_bwd(&layer.ln1, x0, m1, r1, &dln1, t);
            add_into(&mut dh, &dx0);
        }
        // Decoder input embedding grads.
        self.accumulate_embed_grads(dec_input, &dh, t);
        // Through the encoder output LN into the encoder stack.
        let ln_enc_out = self.ln_enc_out.clone();
        let mut dhe =
            self.layer_norm_bwd(&ln_enc_out, &pre_enc_ln, &menc, &renc, &dmem_total, s);
        for ((layer, cache), masks) in
            self.enc.clone().iter().zip(enc_caches.iter()).zip(enc_masks.iter()).rev()
        {
            let (x0, ln1, m1, r1, acache, x1, ln2, m2, r2, hidden) = cache;
            let dff_out = masked(&dhe, &masks.1);
            let dln2 = self.ffn_bwd(&layer.ffn, ln2, hidden, &dff_out, s);
            let dx1 = self.layer_norm_bwd(&layer.ln2, x1, m2, r2, &dln2, s);
            add_into(&mut dhe, &dx1);
            let datt = masked(&dhe, &masks.0);
            let (dln1, _) = self.attention_bwd(&layer.attn, acache, ln1, ln1, s, s, &datt);
            let dx0 = self.layer_norm_bwd(&layer.ln1, x0, m1, r1, &dln1, s);
            add_into(&mut dhe, &dx0);
        }
        self.accumulate_embed_grads(src, &dhe, s);
        loss
    }

    fn accumulate_embed_grads(&mut self, ids: &[u32], dh: &[f32], _t: usize) {
        let d = self.cfg.d_model;
        for (ti, &id) in ids.iter().enumerate() {
            let g = &dh[ti * d..(ti + 1) * d];
            self.store.add_grad_slice(self.embed, (id as usize).min(self.cfg.vocab - 1) * d, g);
            self.store.add_grad_slice(self.pos, ti.min(self.cfg.max_len - 1) * d, g);
        }
    }

    /// Starts KV-cached incremental decoding against encoder memory `mem`
    /// of length `s`. The cross-attention keys/values are projected once
    /// here; each [`Seq2Seq::decode_step`] then costs `O(t)` instead of the
    /// `O(t²)` of re-running the decoder over the whole prefix.
    pub fn begin_decode(&self, mem: &[f32], s: usize) -> DecoderState {
        let d = self.cfg.d_model;
        let n = self.dec.len();
        let mut cross_k = Vec::with_capacity(n);
        let mut cross_v = Vec::with_capacity(n);
        for layer in &self.dec {
            let a = &layer.cross_attn;
            cross_k.push(self.linear(a.wk, a.bk, mem, s, d, d));
            cross_v.push(self.linear(a.wv, a.bv, mem, s, d, d));
        }
        DecoderState {
            self_k: vec![Vec::new(); n],
            self_v: vec![Vec::new(); n],
            cross_k,
            cross_v,
            s,
            pos: 0,
        }
    }

    /// Consumes one decoder token and returns the next-token logits.
    /// Numerically identical to running [`Seq2Seq::decode_last_logits`]
    /// over the whole prefix (decoder layers are causal and LayerNorm is
    /// per-position, so cached keys/values are exact).
    pub fn decode_step(&self, state: &mut DecoderState, token: u32) -> Vec<f32> {
        let d = self.cfg.d_model;
        let h = self.cfg.n_heads;
        let dh = d / h;
        let p = state.pos;
        // Embed the single token at its position.
        let e = self.store.data(self.embed);
        let pe = self.store.data(self.pos);
        let row = (token as usize).min(self.cfg.vocab - 1) * d;
        let prow = p.min(self.cfg.max_len - 1) * d;
        let mut x: Vec<f32> = (0..d).map(|j| e[row + j] + pe[prow + j]).collect();
        for (l, layer) in self.dec.iter().enumerate() {
            // Self-attention against the grown cache.
            let (ln1, ..) = self.layer_norm(&layer.ln1, &x, 1);
            let a = &layer.self_attn;
            let q = self.linear(a.wq, a.bq, &ln1, 1, d, d);
            let k_new = self.linear(a.wk, a.bk, &ln1, 1, d, d);
            let v_new = self.linear(a.wv, a.bv, &ln1, 1, d, d);
            state.self_k[l].extend_from_slice(&k_new);
            state.self_v[l].extend_from_slice(&v_new);
            let ctx = attend_single(&q, &state.self_k[l], &state.self_v[l], p + 1, h, dh);
            let out = self.linear(a.wo, a.bo, &ctx, 1, d, d);
            add_into(&mut x, &out);
            // Cross-attention against the fixed encoder projections.
            let (ln2, ..) = self.layer_norm(&layer.ln2, &x, 1);
            let c = &layer.cross_attn;
            let q2 = self.linear(c.wq, c.bq, &ln2, 1, d, d);
            let ctx2 = attend_single(&q2, &state.cross_k[l], &state.cross_v[l], state.s, h, dh);
            let out2 = self.linear(c.wo, c.bo, &ctx2, 1, d, d);
            add_into(&mut x, &out2);
            // FFN.
            let (ln3, ..) = self.layer_norm(&layer.ln3, &x, 1);
            let (ff, _) = self.ffn_fwd(&layer.ffn, &ln3, 1);
            add_into(&mut x, &ff);
        }
        state.pos += 1;
        let (hn, ..) = self.layer_norm(&self.ln_dec_out, &x, 1);
        let mut logits = vec![0.0f32; self.cfg.vocab];
        matmul_transb_into(&hn, self.store.data(self.embed), &mut logits, 1, d, self.cfg.vocab);
        logits
    }

    /// Writes `linear(x)` into a caller-provided buffer through an
    /// inference weight materialized by [`Seq2Seq::proj_weight`] —
    /// pre-transposed f32 or per-row int8, per the configured
    /// [`Backend`]. The batched paths reuse scratch across steps instead
    /// of allocating.
    #[allow(clippy::too_many_arguments)]
    fn project_into(
        &self,
        w: &ProjWeight,
        b: PId,
        x: &[f32],
        out: &mut [f32],
        t: usize,
        din: usize,
        dout: usize,
        quant: &mut QuantScratch,
    ) {
        let o = slade_obs::obs();
        o.count(slade_obs::KernelCtr::ProjCalls, 1);
        o.count(slade_obs::KernelCtr::ProjRows, t as u64);
        w.apply(x, Some(self.store.data(b)), out, t, din, dout, quant);
    }

    /// Allocation-free [`Seq2Seq::layer_norm`] for inference (no
    /// mean/rstd caches). Arithmetic is identical to the caching version.
    fn layer_norm_into(&self, ln: &Ln, x: &[f32], t: usize, out: &mut [f32]) {
        let d = self.cfg.d_model;
        let gamma = self.store.data(ln.gamma);
        let beta = self.store.data(ln.beta);
        crate::kernels::layer_norm_into(&x[..t * d], gamma, beta, t, d, &mut out[..t * d]);
    }

    /// Batched encoder forward: packs all sequences into one row matrix so
    /// every projection runs as a single matmul over `Σ lengths` rows
    /// (weights stream through the cache once per batch instead of once
    /// per sequence), while attention stays per-sequence — which makes
    /// ragged lengths exact without padding or masking. Returns one
    /// encoder memory per input, numerically identical to
    /// [`Seq2Seq::encode`] on each sequence.
    pub fn encode_batch(&self, srcs: &[&[u32]]) -> Vec<Vec<f32>> {
        let _timer = slade_obs::StageTimer::start(slade_obs::StageHist::Encode);
        let d = self.cfg.d_model;
        let h = self.cfg.n_heads;
        let dh = d / h;
        let scale = 1.0 / (dh as f32).sqrt();
        let lens: Vec<usize> = srcs.iter().map(|s| s.len()).collect();
        let mut offsets = Vec::with_capacity(srcs.len());
        let mut total = 0usize;
        for &l in &lens {
            offsets.push(total);
            total += l;
        }
        slade_obs::obs().count(slade_obs::KernelCtr::EncodeRows, total as u64);
        // Embed each sequence at its row range (positions restart per
        // sequence, as in the scalar path).
        let mut hbuf = vec![0.0f32; total * d];
        for (si, src) in srcs.iter().enumerate() {
            let rows = self.embed_seq(src);
            hbuf[offsets[si] * d..(offsets[si] + lens[si]) * d].copy_from_slice(&rows);
        }
        let mut ln = vec![0.0f32; total * d];
        let mut q = vec![0.0f32; total * d];
        let mut k = vec![0.0f32; total * d];
        let mut v = vec![0.0f32; total * d];
        let mut ctx = vec![0.0f32; total * d];
        let mut proj = vec![0.0f32; total * d];
        let dff = self.cfg.d_ff;
        let mut hidden = vec![0.0f32; total * dff];
        let max_t = lens.iter().copied().max().unwrap_or(0);
        let mut probs = vec![0.0f32; max_t * max_t];
        // Weights materialized once per batch in the backend's inference
        // format (transposed f32 or per-row int8); amortized over `total`
        // rows.
        let mut quant = QuantScratch::default();
        let xposed: Vec<[ProjWeight; 6]> = self
            .enc
            .iter()
            .map(|layer| {
                [
                    self.proj_weight(layer.attn.wq, d, d),
                    self.proj_weight(layer.attn.wk, d, d),
                    self.proj_weight(layer.attn.wv, d, d),
                    self.proj_weight(layer.attn.wo, d, d),
                    self.proj_weight(layer.ffn.w1, dff, d),
                    self.proj_weight(layer.ffn.w2, d, dff),
                ]
            })
            .collect();
        for (layer, xw) in self.enc.iter().zip(&xposed) {
            // Self-attention: one projection matmul per weight over all rows.
            self.layer_norm_into(&layer.ln1, &hbuf, total, &mut ln);
            let a = &layer.attn;
            self.project_into(&xw[0], a.bq, &ln, &mut q, total, d, d, &mut quant);
            self.project_into(&xw[1], a.bk, &ln, &mut k, total, d, d, &mut quant);
            self.project_into(&xw[2], a.bv, &ln, &mut v, total, d, d, &mut quant);
            ctx.iter_mut().for_each(|c| *c = 0.0);
            for (si, &t) in lens.iter().enumerate() {
                if t == 0 {
                    continue;
                }
                let off = offsets[si] * d;
                let qs = &q[off..off + t * d];
                let ks = &k[off..off + t * d];
                let vs = &v[off..off + t * d];
                let cs = &mut ctx[off..off + t * d];
                for head in 0..h {
                    let ho = head * dh;
                    let p = &mut probs[..t * t];
                    for ti in 0..t {
                        let prow = &mut p[ti * t..(ti + 1) * t];
                        crate::kernels::attn_scores_into(
                            &qs[ti * d + ho..ti * d + ho + dh],
                            &ks[ho..],
                            d,
                            scale,
                            prow,
                        );
                        crate::kernels::softmax_into(prow);
                        crate::kernels::attn_weighted_sum_into(
                            prow,
                            &vs[ho..],
                            d,
                            &mut cs[ti * d + ho..ti * d + ho + dh],
                        );
                    }
                }
            }
            self.project_into(&xw[3], a.bo, &ctx, &mut proj, total, d, d, &mut quant);
            add_into(&mut hbuf, &proj);
            // FFN: both matmuls batched over all rows.
            self.layer_norm_into(&layer.ln2, &hbuf, total, &mut ln);
            self.project_into(
                &xw[4],
                layer.ffn.b1,
                &ln,
                &mut hidden,
                total,
                d,
                dff,
                &mut quant,
            );
            crate::kernels::gelu_into(&mut hidden[..total * dff]);
            self.project_into(
                &xw[5],
                layer.ffn.b2,
                &hidden,
                &mut proj,
                total,
                dff,
                d,
                &mut quant,
            );
            add_into(&mut hbuf, &proj);
        }
        self.layer_norm_into(&self.ln_enc_out, &hbuf, total, &mut ln);
        lens.iter()
            .enumerate()
            .map(|(si, &t)| ln[offsets[si] * d..(offsets[si] + t) * d].to_vec())
            .collect()
    }

    /// Transposes one `[dout, din]` weight tensor into `[din, dout]`.
    fn xposed(&self, w: PId, dout: usize, din: usize) -> Vec<f32> {
        let mut t = vec![0.0f32; dout * din];
        transpose_into(self.store.data(w), &mut t, dout, din);
        t
    }

    /// Materializes one weight tensor in the configured backend's
    /// inference format: pre-transposed f32, or per-row symmetric int8
    /// quantized straight from the `[dout, din]` layout (each row is one
    /// output channel, already in the orientation the int8 kernel
    /// consumes — this is the backend's "load time").
    fn proj_weight(&self, w: PId, dout: usize, din: usize) -> ProjWeight {
        match self.cfg.backend {
            Backend::F32 => ProjWeight::F32(crate::kernels::pack_xposed_blocks(
                &self.xposed(w, dout, din),
                din,
                dout,
            )),
            Backend::Int8 => {
                ProjWeight::Int8(QuantizedTensor::quantize(self.store.data(w), dout, din))
            }
        }
    }

    /// Creates an empty [`BatchedDecoderState`] with room for `cap_lanes`
    /// concurrent hypotheses of up to `cap_pos` decoded tokens each. All
    /// arenas are allocated up front and the decoder weights the batched
    /// step needs are materialized once here (transposed and packed for
    /// the f32 backend, per-row quantized for int8); the per-step decode
    /// path then allocates nothing. The state snapshots the weights, so it must
    /// not outlive parameter updates.
    pub fn begin_decode_batch(&self, cap_lanes: usize, cap_pos: usize) -> BatchedDecoderState {
        let layers = self.dec.len();
        let d = self.cfg.d_model;
        let dff = self.cfg.d_ff;
        let arena = cap_lanes.max(1) * cap_pos.max(1) * d;
        let xposed = self
            .dec
            .iter()
            .map(|layer| XposedDecLayer {
                self_wq: self.proj_weight(layer.self_attn.wq, d, d),
                self_wk: self.proj_weight(layer.self_attn.wk, d, d),
                self_wv: self.proj_weight(layer.self_attn.wv, d, d),
                self_wo: self.proj_weight(layer.self_attn.wo, d, d),
                cross_wq: self.proj_weight(layer.cross_attn.wq, d, d),
                cross_wo: self.proj_weight(layer.cross_attn.wo, d, d),
                ffn_w1: self.proj_weight(layer.ffn.w1, dff, d),
                ffn_w2: self.proj_weight(layer.ffn.w2, d, dff),
            })
            .collect();
        let embed_t = self.proj_weight(self.embed, self.cfg.vocab, d);
        BatchedDecoderState {
            d,
            cap_pos: cap_pos.max(1),
            self_k: vec![vec![0.0; arena]; layers],
            self_v: vec![vec![0.0; arena]; layers],
            gather_k: vec![vec![0.0; arena]; layers],
            gather_v: vec![vec![0.0; arena]; layers],
            cross: Vec::new(),
            cross_free: Vec::new(),
            lane_pos: Vec::new(),
            lane_cross: Vec::new(),
            cap_lanes: cap_lanes.max(1),
            xposed,
            embed_t,
            scratch: StepScratch::default(),
        }
    }

    /// Consumes one decoder token **per live lane** and returns the
    /// `[lanes, vocab]` next-token logits, numerically identical to
    /// running [`Seq2Seq::decode_step`] on each lane's own
    /// [`DecoderState`]. Every projection (Q/K/V/out, both FFN layers, and
    /// the vocabulary logits) runs as **one** matmul over all live lanes;
    /// only the attention reductions — `O(position · d_model)` per lane —
    /// remain per-lane, because lanes attend over different-length caches.
    ///
    /// # Panics
    ///
    /// Panics when `tokens.len()` differs from the live lane count, or
    /// when any lane has already consumed `cap_pos` tokens (the arena
    /// capacity chosen at [`Seq2Seq::begin_decode_batch`]).
    pub fn decode_step_batch<'a>(
        &self,
        state: &'a mut BatchedDecoderState,
        tokens: &[u32],
    ) -> &'a [f32] {
        let _timer = slade_obs::StageTimer::start(slade_obs::StageHist::DecodeStep);
        let n = tokens.len();
        assert_eq!(n, state.lane_pos.len(), "one token per live lane");
        slade_obs::obs().count(slade_obs::KernelCtr::DecodeLaneTokens, n as u64);
        // Checked in release too: an overflowing lane would otherwise write
        // into the *next lane's* arena rows and silently corrupt its cache.
        for (lane, &p) in state.lane_pos.iter().enumerate() {
            assert!(
                p < state.cap_pos,
                "lane {lane} overflowed the arena (pos {p}, cap_pos {})",
                state.cap_pos
            );
        }
        let d = self.cfg.d_model;
        let h = self.cfg.n_heads;
        let dh = d / h;
        let dff = self.cfg.d_ff;
        let vocab = self.cfg.vocab;
        let st = &mut *state;
        let max_s = st.cross.iter().map(|c| c.s).max().unwrap_or(0);
        st.scratch.ensure(n, d, dff, vocab, st.cap_pos.max(max_s));
        // Embed each lane's token at the lane's own position.
        let e = self.store.data(self.embed);
        let pe = self.store.data(self.pos);
        for (lane, &tok) in tokens.iter().enumerate() {
            let row = (tok as usize).min(vocab - 1) * d;
            let prow = st.lane_pos[lane].min(self.cfg.max_len - 1) * d;
            for j in 0..d {
                st.scratch.x[lane * d + j] = e[row + j] + pe[prow + j];
            }
        }
        let stride = st.cap_pos * d;
        for (l, layer) in self.dec.iter().enumerate() {
            // Self-attention against the lane-strided KV arena.
            self.layer_norm_into(
                &layer.ln1,
                &st.scratch.x[..n * d],
                n,
                &mut st.scratch.ln[..n * d],
            );
            let a = &layer.self_attn;
            let xw = &st.xposed[l];
            self.project_into(
                &xw.self_wq,
                a.bq,
                &st.scratch.ln[..n * d],
                &mut st.scratch.q[..n * d],
                n,
                d,
                d,
                &mut st.scratch.quant,
            );
            self.project_into(
                &xw.self_wk,
                a.bk,
                &st.scratch.ln[..n * d],
                &mut st.scratch.k[..n * d],
                n,
                d,
                d,
                &mut st.scratch.quant,
            );
            self.project_into(
                &xw.self_wv,
                a.bv,
                &st.scratch.ln[..n * d],
                &mut st.scratch.v[..n * d],
                n,
                d,
                d,
                &mut st.scratch.quant,
            );
            for lane in 0..n {
                let p = st.lane_pos[lane];
                let base = lane * stride;
                st.self_k[l][base + p * d..base + (p + 1) * d]
                    .copy_from_slice(&st.scratch.k[lane * d..(lane + 1) * d]);
                st.self_v[l][base + p * d..base + (p + 1) * d]
                    .copy_from_slice(&st.scratch.v[lane * d..(lane + 1) * d]);
                attend_into(
                    &st.scratch.q[lane * d..(lane + 1) * d],
                    &st.self_k[l][base..base + (p + 1) * d],
                    &st.self_v[l][base..base + (p + 1) * d],
                    p + 1,
                    h,
                    dh,
                    &mut st.scratch.scores,
                    &mut st.scratch.ctx[lane * d..(lane + 1) * d],
                );
            }
            self.project_into(
                &xw.self_wo,
                a.bo,
                &st.scratch.ctx[..n * d],
                &mut st.scratch.proj[..n * d],
                n,
                d,
                d,
                &mut st.scratch.quant,
            );
            add_into(&mut st.scratch.x[..n * d], &st.scratch.proj[..n * d]);
            // Cross-attention against each lane's request memory.
            self.layer_norm_into(
                &layer.ln2,
                &st.scratch.x[..n * d],
                n,
                &mut st.scratch.ln[..n * d],
            );
            let c = &layer.cross_attn;
            self.project_into(
                &xw.cross_wq,
                c.bq,
                &st.scratch.ln[..n * d],
                &mut st.scratch.q[..n * d],
                n,
                d,
                d,
                &mut st.scratch.quant,
            );
            for lane in 0..n {
                let mem = &st.cross[st.lane_cross[lane]];
                attend_into(
                    &st.scratch.q[lane * d..(lane + 1) * d],
                    &mem.k[l],
                    &mem.v[l],
                    mem.s,
                    h,
                    dh,
                    &mut st.scratch.scores,
                    &mut st.scratch.ctx[lane * d..(lane + 1) * d],
                );
            }
            self.project_into(
                &xw.cross_wo,
                c.bo,
                &st.scratch.ctx[..n * d],
                &mut st.scratch.proj[..n * d],
                n,
                d,
                d,
                &mut st.scratch.quant,
            );
            add_into(&mut st.scratch.x[..n * d], &st.scratch.proj[..n * d]);
            // FFN.
            self.layer_norm_into(
                &layer.ln3,
                &st.scratch.x[..n * d],
                n,
                &mut st.scratch.ln[..n * d],
            );
            self.project_into(
                &xw.ffn_w1,
                layer.ffn.b1,
                &st.scratch.ln[..n * d],
                &mut st.scratch.hidden[..n * dff],
                n,
                d,
                dff,
                &mut st.scratch.quant,
            );
            crate::kernels::gelu_into(&mut st.scratch.hidden[..n * dff]);
            self.project_into(
                &xw.ffn_w2,
                layer.ffn.b2,
                &st.scratch.hidden[..n * dff],
                &mut st.scratch.proj[..n * d],
                n,
                dff,
                d,
                &mut st.scratch.quant,
            );
            add_into(&mut st.scratch.x[..n * d], &st.scratch.proj[..n * d]);
        }
        for p in st.lane_pos.iter_mut() {
            *p += 1;
        }
        self.layer_norm_into(
            &self.ln_dec_out,
            &st.scratch.x[..n * d],
            n,
            &mut st.scratch.ln[..n * d],
        );
        // Tied output head through the same backend-materialized weight
        // (no bias).
        st.embed_t.apply(
            &st.scratch.ln[..n * d],
            None,
            &mut st.scratch.logits[..n * vocab],
            n,
            d,
            vocab,
            &mut st.scratch.quant,
        );
        &st.scratch.logits[..n * vocab]
    }

    /// Projects one request's encoder memory into per-layer cross K/V and
    /// registers it with the batched state, returning its handle for
    /// [`BatchedDecoderState::add_lane`]. Done once per request; lanes
    /// (beam hypotheses) of the same request share the projections. The
    /// K/V projections always run in f32 regardless of [`Backend`]: they
    /// happen once per request (not per step), so quantizing them buys
    /// nothing and would add error to every later step. Slots
    /// freed by [`BatchedDecoderState::release_cross_memory`] are reused,
    /// so a long-running continuous-batching session does not grow its
    /// cross-memory table beyond its peak concurrency.
    pub fn register_cross_memory(
        &self,
        state: &mut BatchedDecoderState,
        mem: &[f32],
        s: usize,
    ) -> usize {
        let d = self.cfg.d_model;
        let mut k = Vec::with_capacity(self.dec.len());
        let mut v = Vec::with_capacity(self.dec.len());
        for layer in &self.dec {
            let a = &layer.cross_attn;
            k.push(self.linear(a.wk, a.bk, mem, s, d, d));
            v.push(self.linear(a.wv, a.bv, mem, s, d, d));
        }
        if let Some(id) = state.cross_free.pop() {
            state.cross[id] = CrossMemory { k, v, s };
            id
        } else {
            state.cross.push(CrossMemory { k, v, s });
            state.cross.len() - 1
        }
    }

    /// Greedy decoding (beam size 1 fast path).
    pub fn greedy(&self, src: &[u32], bos: u32, eos: u32, max_len: usize) -> Vec<u32> {
        self.beam_search(src, bos, eos, max_len, 1).into_iter().next().unwrap_or_default()
    }

    /// Beam-search decoding (paper: k = 5), returning up to `beam` finished
    /// hypotheses, best first, without BOS/EOS markers.
    ///
    /// Since the batched-engine refactor this delegates to
    /// [`crate::engine::InferenceEngine`], which owns decode scheduling,
    /// the log-softmax scoring (a proper `x − logsumexp(x)`, not the old
    /// `softmax` + clamped `ln`), length normalization, and the early-stop
    /// policy (a finished short hypothesis no longer masks a better longer
    /// one still live). The per-hypothesis reference path is kept as
    /// [`crate::engine::InferenceEngine::decode_scalar`] and is property-
    /// tested equivalent.
    pub fn beam_search(
        &self,
        src: &[u32],
        bos: u32,
        eos: u32,
        max_len: usize,
        beam: usize,
    ) -> Vec<Vec<u32>> {
        crate::engine::InferenceEngine::new(self).decode(&crate::engine::DecodeRequest {
            src: src.to_vec(),
            bos,
            eos,
            max_len,
            beam,
        })
    }

    /// Serializes to JSON (weights only; optimizer state is rebuilt).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serialization")
    }

    /// Deserializes a model saved by [`Seq2Seq::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Test/benchmark hook: mutable access to a parameter value.
    pub fn perturb_param(&mut self, tensor: usize, index: usize, delta: f32) {
        let data = self.store.data_mut(tensor);
        if index < data.len() {
            data[index] += delta;
        }
    }

    /// Test hook: the accumulated gradient of one parameter scalar.
    pub fn grad_of(&self, tensor: usize, index: usize) -> f32 {
        self.store.grad_at(tensor, index)
    }
}

fn add_into(dst: &mut [f32], src: &[f32]) {
    for (a, b) in dst.iter_mut().zip(src) {
        *a += b;
    }
}

/// Applies an inverted-dropout mask in place; no-op when `mask` is `None`.
fn apply_mask(x: &mut [f32], mask: &Option<Vec<f32>>) {
    if let Some(m) = mask {
        for (a, b) in x.iter_mut().zip(m) {
            *a *= b;
        }
    }
}

/// The gradient flowing into a dropped residual branch: `dh ⊙ mask`.
fn masked(dh: &[f32], mask: &Option<Vec<f32>>) -> Vec<f32> {
    match mask {
        Some(m) => dh.iter().zip(m).map(|(a, b)| a * b).collect(),
        None => dh.to_vec(),
    }
}

fn col_sums(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c] += x[r * cols + c];
        }
    }
    out
}

/// Attention activations cached for the backward pass.
#[derive(Debug, Clone)]
struct AttnCache {
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    probs: Vec<f32>,
    ctx: Vec<f32>,
}

/// Per-hypothesis decoder state for KV-cached incremental decoding
/// ([`Seq2Seq::begin_decode`] / [`Seq2Seq::decode_step`]). Cloning one is
/// `O(layers × (pos + src) × d_model)`, which is what makes carrying a
/// state per beam hypothesis cheaper than recomputing the prefix.
#[derive(Debug, Clone)]
pub struct DecoderState {
    /// Per layer: self-attention keys, one `d_model` row per consumed token.
    self_k: Vec<Vec<f32>>,
    /// Per layer: self-attention values.
    self_v: Vec<Vec<f32>>,
    /// Per layer: encoder-memory key projections (fixed at start).
    cross_k: Vec<Vec<f32>>,
    /// Per layer: encoder-memory value projections (fixed at start).
    cross_v: Vec<Vec<f32>>,
    /// Encoder memory length.
    s: usize,
    /// Tokens consumed so far (also the next position index).
    pos: usize,
}

impl DecoderState {
    /// Tokens consumed so far.
    pub fn len(&self) -> usize {
        self.pos
    }

    /// True before the first [`Seq2Seq::decode_step`].
    pub fn is_empty(&self) -> bool {
        self.pos == 0
    }
}

/// One projection's inference weights, materialized in the configured
/// [`Backend`]'s format by [`Seq2Seq::proj_weight`].
#[derive(Debug, Clone)]
enum ProjWeight {
    /// Pre-transposed f32 weights packed into j-block slabs
    /// ([`crate::kernels::pack_xposed_blocks`]) — the layout
    /// [`crate::kernels::matmul_xpacked_into`] streams through
    /// sequentially.
    F32(Vec<f32>),
    /// Per-row symmetric int8 weights kept in the original `[dout, din]`
    /// orientation (each row one output channel, contiguous over the
    /// reduction dimension — what the int8 kernel consumes directly).
    Int8(QuantizedTensor),
}

impl ProjWeight {
    /// Projects `x` (`t × din`) into `out` (`t × dout`), adding `bias`
    /// when given. The int8 path quantizes activations per row into the
    /// caller's scratch — always with the scalar routine, so rounding is
    /// identical on every dispatch tier — then runs the dispatched
    /// i8×i8→i32 matmul with f32 dequant-on-accumulate.
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        x: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
        t: usize,
        din: usize,
        dout: usize,
        quant: &mut QuantScratch,
    ) {
        match self {
            ProjWeight::F32(wt) => {
                crate::kernels::matmul_xpacked_into(x, wt, &mut out[..t * dout], t, din, dout);
                if let Some(b) = bias {
                    for row in 0..t {
                        for (o, &bv) in out[row * dout..(row + 1) * dout].iter_mut().zip(b) {
                            *o += bv;
                        }
                    }
                }
            }
            ProjWeight::Int8(qt) => {
                debug_assert_eq!(qt.rows, dout);
                debug_assert_eq!(qt.cols, din);
                quant.ensure(t, din);
                for r in 0..t {
                    quant.xs[r] = crate::kernels::quantize_row_i8(
                        &x[r * din..(r + 1) * din],
                        &mut quant.xq[r * din..(r + 1) * din],
                    );
                }
                crate::kernels::qmatmul_transb_into(
                    &quant.xq[..t * din],
                    &quant.xs[..t],
                    &qt.q,
                    &qt.scales,
                    bias,
                    &mut out[..t * dout],
                    t,
                    din,
                    dout,
                );
            }
        }
    }
}

/// Reusable activation-quantization scratch for the int8 backend (row
/// int8 values plus one scale per row).
#[derive(Debug, Clone, Default)]
struct QuantScratch {
    xq: Vec<i8>,
    xs: Vec<f32>,
}

impl QuantScratch {
    fn ensure(&mut self, t: usize, din: usize) {
        if self.xq.len() < t * din {
            self.xq.resize(t * din, 0);
        }
        if self.xs.len() < t {
            self.xs.resize(t, 0.0);
        }
    }
}

/// Backend-materialized decoder weights for one layer (see
/// [`ProjWeight`]).
#[derive(Debug, Clone)]
struct XposedDecLayer {
    self_wq: ProjWeight,
    self_wk: ProjWeight,
    self_wv: ProjWeight,
    self_wo: ProjWeight,
    cross_wq: ProjWeight,
    cross_wo: ProjWeight,
    ffn_w1: ProjWeight,
    ffn_w2: ProjWeight,
}

/// Per-layer cross-attention projections of one request's encoder memory,
/// shared by all of that request's beam lanes.
#[derive(Debug, Clone)]
struct CrossMemory {
    /// Per layer: `s × d_model` key projections.
    k: Vec<Vec<f32>>,
    /// Per layer: `s × d_model` value projections.
    v: Vec<Vec<f32>>,
    /// Encoder memory length.
    s: usize,
}

/// Reusable per-step buffers: sized once (for the largest lane count seen)
/// and reused, so a decode step performs no heap allocation.
#[derive(Debug, Clone, Default)]
struct StepScratch {
    x: Vec<f32>,
    ln: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    ctx: Vec<f32>,
    proj: Vec<f32>,
    hidden: Vec<f32>,
    logits: Vec<f32>,
    scores: Vec<f32>,
    quant: QuantScratch,
}

impl StepScratch {
    fn ensure(&mut self, n: usize, d: usize, dff: usize, vocab: usize, cap_pos: usize) {
        let rows = n * d;
        if self.x.len() < rows {
            self.x.resize(rows, 0.0);
            self.ln.resize(rows, 0.0);
            self.q.resize(rows, 0.0);
            self.k.resize(rows, 0.0);
            self.v.resize(rows, 0.0);
            self.ctx.resize(rows, 0.0);
            self.proj.resize(rows, 0.0);
        }
        if self.hidden.len() < n * dff {
            self.hidden.resize(n * dff, 0.0);
        }
        if self.logits.len() < n * vocab {
            self.logits.resize(n * vocab, 0.0);
        }
        if self.scores.len() < cap_pos {
            self.scores.resize(cap_pos, 0.0);
        }
    }
}

/// Arena-backed decoder state for **all** live beam lanes of one decode
/// batch, possibly spanning several independent requests (continuous-
/// batching style). Per layer, the self-attention keys/values of every
/// lane live contiguously in one lane-strided arena (`lane · cap_pos · d`
/// offsets), so growing a lane is a row write and reordering survivors
/// after a beam step is a bounded `memcpy` gather — not a per-survivor
/// clone of a [`DecoderState`] (which reallocates every K/V vector).
///
/// Built by [`Seq2Seq::begin_decode_batch`]; stepped by
/// [`Seq2Seq::decode_step_batch`]; lanes are reshuffled with
/// [`BatchedDecoderState::reorder`].
#[derive(Debug, Clone)]
pub struct BatchedDecoderState {
    d: usize,
    cap_pos: usize,
    cap_lanes: usize,
    /// Per layer: lane-strided self-attention key arena.
    self_k: Vec<Vec<f32>>,
    /// Per layer: lane-strided self-attention value arena.
    self_v: Vec<Vec<f32>>,
    /// Gather targets for [`BatchedDecoderState::reorder`] (ping-pong).
    gather_k: Vec<Vec<f32>>,
    gather_v: Vec<Vec<f32>>,
    /// Registered per-request cross projections.
    cross: Vec<CrossMemory>,
    /// Slots in `cross` released by finished requests, reused by the next
    /// [`Seq2Seq::register_cross_memory`].
    cross_free: Vec<usize>,
    /// Tokens consumed so far, per lane.
    lane_pos: Vec<usize>,
    /// Cross-memory handle, per lane.
    lane_cross: Vec<usize>,
    /// Backend-materialized decoder weights (snapshot at construction).
    xposed: Vec<XposedDecLayer>,
    /// Tied output embedding in the backend's format (f32: transposed
    /// `[d_model, vocab]`; int8: per-row quantized `[vocab, d_model]`).
    embed_t: ProjWeight,
    scratch: StepScratch,
}

impl BatchedDecoderState {
    /// Number of live lanes.
    pub fn num_lanes(&self) -> usize {
        self.lane_pos.len()
    }

    /// True when no lanes are live.
    pub fn is_empty(&self) -> bool {
        self.lane_pos.is_empty()
    }

    /// Tokens consumed by `lane` so far.
    pub fn lane_len(&self, lane: usize) -> usize {
        self.lane_pos[lane]
    }

    /// Adds a fresh lane (position 0) attached to the cross memory
    /// returned by [`Seq2Seq::register_cross_memory`]; returns the lane
    /// index.
    ///
    /// # Panics
    ///
    /// Panics when lane capacity is exhausted or the handle is unknown.
    pub fn add_lane(&mut self, cross_id: usize) -> usize {
        assert!(self.lane_pos.len() < self.cap_lanes, "lane capacity exhausted");
        assert!(cross_id < self.cross.len(), "unknown cross-memory handle");
        self.lane_pos.push(0);
        self.lane_cross.push(cross_id);
        self.lane_pos.len() - 1
    }

    /// Reorders lanes so that new lane `i` continues old lane
    /// `parents[i]` — the beam-survivor gather. A parent may appear any
    /// number of times (fan-out) or not at all (pruned lane; its arena
    /// rows are simply abandoned). The identity mapping is detected and
    /// costs nothing (the copy-on-write fast path that makes greedy and
    /// already-ordered beams free); otherwise each surviving lane costs
    /// one `pos × d_model` memcpy per layer per tensor into the gather
    /// arena, which is then swapped in — no allocation either way.
    ///
    /// # Panics
    ///
    /// Panics if a parent index is out of range or capacity is exceeded.
    pub fn reorder(&mut self, parents: &[usize]) {
        let n_old = self.lane_pos.len();
        assert!(parents.len() <= self.cap_lanes, "lane capacity exceeded");
        if parents.len() == n_old && parents.iter().enumerate().all(|(i, &p)| i == p) {
            return;
        }
        let stride = self.cap_pos * self.d;
        let layers = self.self_k.len();
        for l in 0..layers {
            for (i, &p) in parents.iter().enumerate() {
                assert!(p < n_old, "parent {p} out of range ({n_old} lanes)");
                let rows = self.lane_pos[p] * self.d;
                self.gather_k[l][i * stride..i * stride + rows]
                    .copy_from_slice(&self.self_k[l][p * stride..p * stride + rows]);
                self.gather_v[l][i * stride..i * stride + rows]
                    .copy_from_slice(&self.self_v[l][p * stride..p * stride + rows]);
            }
            std::mem::swap(&mut self.self_k[l], &mut self.gather_k[l]);
            std::mem::swap(&mut self.self_v[l], &mut self.gather_v[l]);
        }
        self.lane_pos = parents.iter().map(|&p| self.lane_pos[p]).collect();
        self.lane_cross = parents.iter().map(|&p| self.lane_cross[p]).collect();
    }

    /// Releases a cross-memory registration once the request that owned it
    /// has no live lanes left, freeing its `O(layers · s · d_model)`
    /// projections and recycling the slot for the next
    /// [`Seq2Seq::register_cross_memory`] — the bookkeeping that keeps a
    /// long-running continuous-batching session at bounded memory.
    ///
    /// # Panics
    ///
    /// Panics when the handle is unknown, still referenced by a live lane,
    /// or already released.
    pub fn release_cross_memory(&mut self, id: usize) {
        assert!(id < self.cross.len(), "unknown cross-memory handle {id}");
        assert!(
            !self.lane_cross.contains(&id),
            "cross memory {id} is still referenced by a live lane"
        );
        assert!(!self.cross_free.contains(&id), "cross memory {id} released twice");
        self.cross[id] = CrossMemory { k: Vec::new(), v: Vec::new(), s: 0 };
        self.cross_free.push(id);
    }
}

/// Single-query attention over `n` cached key/value rows, writing the
/// context into `ctx` (zeroed here) using a caller-provided score buffer —
/// the allocation-free twin of [`attend_single`], with identical
/// arithmetic.
#[allow(clippy::too_many_arguments)]
fn attend_into(
    q: &[f32],
    keys: &[f32],
    values: &[f32],
    n: usize,
    h: usize,
    dh: usize,
    scores: &mut [f32],
    ctx: &mut [f32],
) {
    slade_obs::obs().count(slade_obs::KernelCtr::AttendCalls, 1);
    let d = h * dh;
    let scale = 1.0 / (dh as f32).sqrt();
    ctx.iter_mut().for_each(|c| *c = 0.0);
    if n == 0 {
        // Degenerate empty memory: nothing to attend over, context is 0.
        return;
    }
    let scores = &mut scores[..n];
    for head in 0..h {
        let off = head * dh;
        crate::kernels::attn_scores_into(&q[off..off + dh], &keys[off..], d, scale, scores);
        crate::kernels::softmax_into(scores);
        crate::kernels::attn_weighted_sum_into(
            scores,
            &values[off..],
            d,
            &mut ctx[off..off + dh],
        );
    }
}

/// Single-query attention over `n` cached key/value rows — allocating
/// wrapper over [`attend_into`], so the scalar and batched decode paths
/// share one arithmetic implementation by construction.
fn attend_single(
    q: &[f32],
    keys: &[f32],
    values: &[f32],
    n: usize,
    h: usize,
    dh: usize,
) -> Vec<f32> {
    let d = h * dh;
    let mut ctx = vec![0.0f32; d];
    let mut scores = vec![0.0f32; n];
    attend_into(q, keys, values, n, h, dh, &mut scores, &mut ctx);
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_scales_with_config() {
        let m = Seq2Seq::new(TransformerConfig::tiny(32), 1);
        assert!(m.num_params() > 5_000, "{}", m.num_params());
        let big = Seq2Seq::new(TransformerConfig::small(512), 1);
        assert!(big.num_params() > m.num_params() * 5);
    }

    #[test]
    fn loss_decreases_when_overfitting_a_pair() {
        let mut m = Seq2Seq::new(TransformerConfig::tiny(16), 7);
        let src = vec![5u32, 6, 7, 8];
        let dec_input = vec![1u32, 9, 10, 11];
        let labels = vec![9u32, 10, 11, 2];
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..60 {
            m.zero_grads();
            let loss = m.train_pair(&src, &dec_input, &labels);
            m.adam_step(3e-3, 0.0, 1.0);
            if step == 0 {
                first = loss;
            }
            last = loss;
        }
        assert!(last < first * 0.5, "no learning: {first} -> {last}");
    }

    #[test]
    fn greedy_reproduces_memorized_sequence() {
        let mut m = Seq2Seq::new(TransformerConfig::tiny(16), 3);
        let src = vec![5u32, 6, 7];
        let tgt = vec![12u32, 13, 14];
        let dec_input = vec![1, 12, 13, 14];
        let labels = vec![12, 13, 14, 2];
        for _ in 0..150 {
            m.zero_grads();
            m.train_pair(&src, &dec_input, &labels);
            m.adam_step(3e-3, 0.0, 1.0);
        }
        let out = m.greedy(&src, 1, 2, 8);
        assert_eq!(out, tgt, "memorization failed");
        let _ = tgt;
    }

    #[test]
    fn beam_search_returns_ranked_distinct_hypotheses() {
        let m = Seq2Seq::new(TransformerConfig::tiny(16), 11);
        let beams = m.beam_search(&[4, 5], 1, 2, 6, 5);
        assert!(!beams.is_empty());
        assert!(beams.len() <= 5);
    }

    /// Finite-difference gradient check across several parameter tensors.
    #[test]
    fn gradients_match_finite_differences() {
        let cfg = TransformerConfig::tiny(12);
        let src = vec![4u32, 5, 6];
        let dec_input = vec![1u32, 7, 8];
        let labels = vec![7u32, 8, 2];
        // Probe a few (tensor, index) pairs spread across the model.
        let probes = [(0usize, 3usize), (1, 0), (4, 2), (8, 1)];
        for &(tensor, index) in &probes {
            let mut m = Seq2Seq::new(cfg, 42);
            m.zero_grads();
            let _ = m.train_pair(&src, &dec_input, &labels);
            let analytic = m.grad_of(tensor, index);
            let eps = 2e-2f32;
            let mut mp = Seq2Seq::new(cfg, 42);
            mp.perturb_param(tensor, index, eps);
            let lp = mp.train_pair(&src, &dec_input, &labels);
            let mut mm = Seq2Seq::new(cfg, 42);
            mm.perturb_param(tensor, index, -eps);
            let lm = mm.train_pair(&src, &dec_input, &labels);
            let numeric = (lp - lm) / (2.0 * eps);
            let denom = analytic.abs().max(numeric.abs()).max(1e-3);
            assert!(
                (analytic - numeric).abs() / denom < 0.15,
                "tensor {tensor} idx {index}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn serde_roundtrip_preserves_behavior() {
        let m = Seq2Seq::new(TransformerConfig::tiny(16), 5);
        let json = m.to_json();
        let back = Seq2Seq::from_json(&json).unwrap();
        let a = m.greedy(&[4, 5, 6], 1, 2, 6);
        let b = back.greedy(&[4, 5, 6], 1, 2, 6);
        assert_eq!(a, b);
    }

    #[test]
    fn eval_loss_matches_train_pair_loss_without_dropout() {
        let mut m = Seq2Seq::new(TransformerConfig::tiny(16), 9);
        let src = vec![5u32, 6, 7];
        let dec_input = vec![1u32, 9, 10];
        let labels = vec![9u32, 10, 2];
        let fwd_only = m.eval_loss(&src, &dec_input, &labels);
        m.zero_grads();
        let with_bwd = m.train_pair(&src, &dec_input, &labels);
        assert!(
            (fwd_only - with_bwd).abs() < 1e-4,
            "forward-only {fwd_only} vs train {with_bwd}"
        );
    }

    #[test]
    fn dropout_zero_is_a_strict_noop() {
        let src = vec![5u32, 6, 7];
        let dec_input = vec![1u32, 9, 10];
        let labels = vec![9u32, 10, 2];
        let mut a = Seq2Seq::new(TransformerConfig::tiny(16), 21);
        let mut b = Seq2Seq::new(TransformerConfig::tiny(16), 21);
        b.set_dropout(0.0, 777);
        for _ in 0..5 {
            a.zero_grads();
            b.zero_grads();
            let la = a.train_pair(&src, &dec_input, &labels);
            let lb = b.train_pair(&src, &dec_input, &labels);
            assert_eq!(la, lb, "p = 0 must be bit-identical");
            a.adam_step(1e-3, 0.01, 1.0);
            b.adam_step(1e-3, 0.01, 1.0);
        }
    }

    #[test]
    fn dropout_model_still_learns() {
        let mut m = Seq2Seq::new(TransformerConfig::tiny(16), 13);
        m.set_dropout(0.2, 4);
        let src = vec![5u32, 6, 7, 8];
        let dec_input = vec![1u32, 9, 10, 11];
        let labels = vec![9u32, 10, 11, 2];
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..80 {
            m.zero_grads();
            let _ = m.train_pair(&src, &dec_input, &labels);
            m.adam_step(3e-3, 0.0, 1.0);
            // Dropout makes the train loss noisy; track the clean eval loss.
            let loss = m.eval_loss(&src, &dec_input, &labels);
            if step == 0 {
                first = loss;
            }
            last = loss;
        }
        assert!(last < first * 0.7, "no learning with dropout: {first} -> {last}");
    }

    #[test]
    fn dropout_runs_are_deterministic_given_seed() {
        let src = vec![5u32, 6, 7];
        let dec_input = vec![1u32, 9, 10];
        let labels = vec![9u32, 10, 2];
        let run = |seed| {
            let mut m = Seq2Seq::new(TransformerConfig::tiny(16), 3);
            m.set_dropout(0.3, seed);
            let mut losses = Vec::new();
            for _ in 0..4 {
                m.zero_grads();
                losses.push(m.train_pair(&src, &dec_input, &labels));
                m.adam_step(1e-3, 0.0, 1.0);
            }
            losses
        };
        assert_eq!(run(5), run(5), "same dropout seed, same trajectory");
        assert_ne!(run(5), run(6), "different dropout seeds should differ");
    }

    /// The gradient check must also hold *with* dropout enabled, since the
    /// same deterministic masks are resampled per call in the same order.
    #[test]
    fn gradients_match_finite_differences_with_dropout() {
        let cfg = TransformerConfig::tiny(12);
        let src = vec![4u32, 5, 6];
        let dec_input = vec![1u32, 7, 8];
        let labels = vec![7u32, 8, 2];
        for &(tensor, index) in &[(0usize, 3usize), (4, 2)] {
            let fresh = |seed| {
                let mut m = Seq2Seq::new(cfg, seed);
                m.set_dropout(0.25, 99);
                m
            };
            let mut m = fresh(42);
            m.zero_grads();
            let _ = m.train_pair(&src, &dec_input, &labels);
            let analytic = m.grad_of(tensor, index);
            let eps = 2e-2f32;
            let mut mp = fresh(42);
            mp.perturb_param(tensor, index, eps);
            let lp = mp.train_pair(&src, &dec_input, &labels);
            let mut mm = fresh(42);
            mm.perturb_param(tensor, index, -eps);
            let lm = mm.train_pair(&src, &dec_input, &labels);
            let numeric = (lp - lm) / (2.0 * eps);
            let denom = analytic.abs().max(numeric.abs()).max(1e-3);
            assert!(
                (analytic - numeric).abs() / denom < 0.15,
                "tensor {tensor} idx {index}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    /// Reference beam search that re-runs the decoder over the whole prefix
    /// every step (the pre-KV-cache implementation); used as an oracle. It
    /// independently reimplements the engine's scoring (full-row
    /// log-softmax + full descending sort, where the engine uses the fused
    /// top-k kernel) and its early-stop policy.
    fn beam_search_full_recompute(
        m: &Seq2Seq,
        src: &[u32],
        bos: u32,
        eos: u32,
        max_len: usize,
        beam: usize,
    ) -> Vec<Vec<u32>> {
        let beam = beam.max(1);
        let src: Vec<u32> = src.iter().take(m.cfg.max_len).copied().collect();
        let mem = m.encode(&src);
        let s = src.len();
        let mut live: Vec<(Vec<u32>, f32)> = vec![(vec![bos], 0.0)];
        let mut done: Vec<(Vec<u32>, f32)> = Vec::new();
        let budget = max_len.min(m.cfg.max_len - 1).max(1);
        let mut step = 0usize;
        loop {
            let mut next: Vec<(Vec<u32>, f32)> = Vec::new();
            for (prefix, score) in &live {
                let mut logits = m.decode_last_logits(&mem, s, prefix);
                log_softmax_rows(&mut logits, 1, m.cfg.vocab);
                let mut idx: Vec<usize> = (0..m.cfg.vocab).collect();
                idx.sort_by(|&a, &b| logits[b].total_cmp(&logits[a]));
                for &cand in idx.iter().take(beam) {
                    let mut p = prefix.clone();
                    p.push(cand as u32);
                    next.push((p, score + logits[cand]));
                }
            }
            step += 1;
            next.sort_by(|a, b| b.1.total_cmp(&a.1));
            next.truncate(beam);
            let mut survivors: Vec<(Vec<u32>, f32)> = Vec::new();
            for (p, sc) in next {
                if *p.last().unwrap() == eos {
                    done.push((p, sc));
                } else {
                    survivors.push((p, sc));
                }
            }
            let converged = done.len() >= beam && {
                let mut norms: Vec<f32> =
                    done.iter().map(|(p, sc)| sc / p.len() as f32).collect();
                norms.sort_by(|a, b| b.total_cmp(a));
                let best_live = survivors
                    .iter()
                    .map(|(p, sc)| sc / p.len() as f32)
                    .fold(f32::NEG_INFINITY, f32::max);
                best_live <= norms[beam - 1]
            };
            if survivors.is_empty() || step >= budget || converged {
                done.extend(survivors);
                break;
            }
            live = survivors;
        }
        done.sort_by(|a, b| (b.1 / b.0.len() as f32).total_cmp(&(a.1 / a.0.len() as f32)));
        done.into_iter()
            .take(beam)
            .map(|(p, _)| p.into_iter().filter(|&t| t != bos && t != eos).collect())
            .collect()
    }

    /// A tiny model trained enough to produce non-degenerate distributions.
    fn trained_tiny() -> Seq2Seq {
        let mut m = Seq2Seq::new(TransformerConfig::tiny(16), 17);
        let pairs: [(&[u32], &[u32]); 2] = [(&[4, 5, 6], &[9, 10, 11]), (&[6, 5], &[11, 9])];
        for _ in 0..60 {
            for (src, tgt) in pairs {
                let mut dec = vec![1u32];
                dec.extend_from_slice(tgt);
                let mut labels = tgt.to_vec();
                labels.push(2);
                m.zero_grads();
                m.train_pair(src, &dec, &labels);
                m.adam_step(3e-3, 0.0, 1.0);
            }
        }
        m
    }

    #[test]
    fn incremental_decode_matches_full_recompute_logits() {
        let m = trained_tiny();
        let src = vec![4u32, 5, 6];
        let mem = m.encode(&src);
        let prefix = vec![1u32, 9, 10, 11];
        let full = m.decode_last_logits(&mem, src.len(), &prefix);
        let mut state = m.begin_decode(&mem, src.len());
        let mut incremental = Vec::new();
        for &tok in &prefix {
            incremental = m.decode_step(&mut state, tok);
        }
        assert_eq!(full.len(), incremental.len());
        for (a, b) in full.iter().zip(&incremental) {
            assert!((a - b).abs() < 1e-4, "logit mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn kv_cached_beam_matches_full_recompute_beam() {
        let m = trained_tiny();
        for src in [vec![4u32, 5, 6], vec![6u32, 5], vec![5u32]] {
            for beam in [1usize, 3, 5] {
                let fast = m.beam_search(&src, 1, 2, 10, beam);
                let slow = beam_search_full_recompute(&m, &src, 1, 2, 10, beam);
                assert_eq!(fast, slow, "src {src:?} beam {beam}");
            }
        }
    }

    #[test]
    fn decoder_state_reports_progress() {
        let m = Seq2Seq::new(TransformerConfig::tiny(16), 1);
        let mem = m.encode(&[4, 5]);
        let mut state = m.begin_decode(&mem, 2);
        assert!(state.is_empty());
        let _ = m.decode_step(&mut state, 1);
        let _ = m.decode_step(&mut state, 7);
        assert_eq!(state.len(), 2);
    }

    #[test]
    fn token_accuracy_reaches_one_on_memorized_pair() {
        let mut m = Seq2Seq::new(TransformerConfig::tiny(16), 3);
        let src = vec![5u32, 6, 7];
        let dec_input = vec![1, 12, 13, 14];
        let labels = vec![12, 13, 14, 2];
        for _ in 0..150 {
            m.zero_grads();
            m.train_pair(&src, &dec_input, &labels);
            m.adam_step(3e-3, 0.0, 1.0);
        }
        let acc = m.eval_token_accuracy(&src, &dec_input, &labels);
        assert!(acc > 0.99, "memorized pair should be perfectly predicted: {acc}");
    }
}
