//! From-scratch CPU neural network stack for the SLaDe reproduction.
//!
//! The paper trains a 200M-parameter BART-style encoder-decoder on 4×A100
//! for 72 h. This crate implements the same architecture and training recipe
//! (cross-entropy with teacher forcing, AdamW-style weight decay, **no
//! dropout** by default, beam-search decoding) sized for a single CPU core —
//! see `DESIGN.md` for the scaling substitution argument.
//!
//! Layout:
//! - [`kernels`] — runtime-dispatched SIMD kernel tiers (AVX2 / NEON /
//!   scalar, all bit-identical) plus the int8 quantized matmul;
//! - [`math`] — dense kernels (matmul variants, softmax, GELU), hot
//!   paths dispatching through [`kernels`];
//! - [`store`] — flat parameter store with gradients and Adam moments,
//!   plus per-row symmetric int8 quantization ([`QuantizedTensor`]);
//! - [`model`] — the seq2seq Transformer with hand-written backward passes,
//!   optional seeded dropout (for the paper's §V-C ablation), forward-only
//!   evaluation ([`Seq2Seq::eval_loss`]), KV-cached incremental
//!   decoding ([`Seq2Seq::begin_decode`]/[`Seq2Seq::decode_step`]) that is
//!   bit-identical to full recomputation, and the arena-backed batched
//!   decode path ([`Seq2Seq::encode_batch`]/[`Seq2Seq::decode_step_batch`]);
//! - [`engine`] — the batched [`InferenceEngine`]: beam-search scheduling,
//!   scoring and early-stop policy, interleaving many requests into one
//!   decode batch.
//!
//! # Example
//!
//! ```
//! use slade_nn::{Seq2Seq, TransformerConfig};
//!
//! let mut model = Seq2Seq::new(TransformerConfig::tiny(16), 0);
//! // One teacher-forced step on a toy pair.
//! model.zero_grads();
//! let loss = model.train_pair(&[4, 5], &[1, 6], &[6, 2]);
//! model.adam_step(1e-3, 0.01, 1.0);
//! assert!(loss > 0.0);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod kernels;
pub mod math;
pub mod model;
pub mod store;

pub use engine::{DecodeRequest, InferenceEngine};
pub use kernels::IsaTier;
pub use model::{Backend, BatchedDecoderState, DecoderState, Seq2Seq, TransformerConfig};
pub use store::{ParamStore, ParamTensor, QuantizedTensor};
