//! Flat parameter store with gradients and Adam moments.
//!
//! Modules reference parameters by [`PId`]; the optimizer walks the whole
//! store. Keeping data/grad/moments side by side makes AdamW and weight
//! decay one loop, and (de)serialization trivial.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Handle to one parameter tensor.
pub type PId = usize;

/// One parameter tensor plus training state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamTensor {
    /// Parameter values (row-major).
    pub data: Vec<f32>,
    /// Accumulated gradient.
    #[serde(skip)]
    pub grad: Vec<f32>,
    /// Adam first moment.
    #[serde(skip)]
    pub m: Vec<f32>,
    /// Adam second moment.
    #[serde(skip)]
    pub v: Vec<f32>,
}

/// The set of all model parameters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    tensors: Vec<ParamTensor>,
    /// Adam step counter (for bias correction).
    pub step: u64,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a tensor of `len` values drawn from N(0, std) — the paper
    /// initializes from N(0, 0.02).
    pub fn alloc(&mut self, len: usize, std: f32, rng: &mut impl Rng) -> PId {
        let data = (0..len)
            .map(|_| {
                // Box–Muller from two uniforms.
                let u1: f32 = rng.gen_range(1e-6..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                z * std
            })
            .collect();
        self.push(data)
    }

    /// Allocates a zero tensor (biases, layer-norm beta).
    pub fn alloc_zeros(&mut self, len: usize) -> PId {
        self.push(vec![0.0; len])
    }

    /// Allocates a ones tensor (layer-norm gamma).
    pub fn alloc_ones(&mut self, len: usize) -> PId {
        self.push(vec![1.0; len])
    }

    fn push(&mut self, data: Vec<f32>) -> PId {
        let len = data.len();
        self.tensors.push(ParamTensor {
            data,
            grad: vec![0.0; len],
            m: vec![0.0; len],
            v: vec![0.0; len],
        });
        self.tensors.len() - 1
    }

    /// Parameter values.
    pub fn data(&self, id: PId) -> &[f32] {
        &self.tensors[id].data
    }

    /// Adds `g` into the gradient of `id`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn add_grad(&mut self, id: PId, g: &[f32]) {
        let grad = &mut self.tensors[id].grad;
        assert_eq!(grad.len(), g.len(), "gradient shape mismatch");
        for (a, b) in grad.iter_mut().zip(g) {
            *a += b;
        }
    }

    /// Adds `g` into a row-slice of the gradient (embedding rows).
    pub fn add_grad_slice(&mut self, id: PId, offset: usize, g: &[f32]) {
        let grad = &mut self.tensors[id].grad;
        for (a, b) in grad[offset..offset + g.len()].iter_mut().zip(g) {
            *a += b;
        }
    }

    /// Zeroes all gradients (start of an accumulation window).
    pub fn zero_grads(&mut self) {
        for t in &mut self.tensors {
            t.grad.iter_mut().for_each(|g| *g = 0.0);
        }
    }

    /// One AdamW update over every tensor. `scale` divides gradients (for
    /// gradient accumulation over a minibatch); `weight_decay` is decoupled,
    /// as the paper regularizes with weight decay instead of dropout.
    pub fn adam_step(&mut self, lr: f32, weight_decay: f32, scale: f32) {
        self.step += 1;
        let b1 = 0.9f32;
        let b2 = 0.999f32;
        let eps = 1e-8f32;
        let bc1 = 1.0 - b1.powi(self.step as i32);
        let bc2 = 1.0 - b2.powi(self.step as i32);
        for t in &mut self.tensors {
            // Re-materialize moment buffers after deserialization.
            if t.grad.len() != t.data.len() {
                t.grad = vec![0.0; t.data.len()];
            }
            if t.m.len() != t.data.len() {
                t.m = vec![0.0; t.data.len()];
                t.v = vec![0.0; t.data.len()];
            }
            for i in 0..t.data.len() {
                let g = t.grad[i] * scale;
                t.m[i] = b1 * t.m[i] + (1.0 - b1) * g;
                t.v[i] = b2 * t.v[i] + (1.0 - b2) * g * g;
                let mhat = t.m[i] / bc1;
                let vhat = t.v[i] / bc2;
                t.data[i] -= lr * (mhat / (vhat.sqrt() + eps) + weight_decay * t.data[i]);
            }
        }
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.tensors.iter().flat_map(|t| t.grad.iter()).map(|g| g * g).sum::<f32>().sqrt()
    }

    /// Scales all gradients by `factor` (gradient clipping).
    pub fn scale_grads(&mut self, factor: f32) {
        for t in &mut self.tensors {
            t.grad.iter_mut().for_each(|g| *g *= factor);
        }
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.tensors.iter().map(|t| t.data.len()).sum()
    }

    /// Gradient value at `(tensor, index)` (test support).
    ///
    /// # Panics
    ///
    /// Panics if the tensor id or index is out of range.
    pub fn grad_at(&self, tensor: PId, index: usize) -> f32 {
        self.tensors[tensor].grad[index]
    }

    /// Direct mutable access for tests/fine-tuning.
    pub fn data_mut(&mut self, id: PId) -> &mut [f32] {
        // Ensure aux buffers stay consistent after deserialization.
        let t = &mut self.tensors[id];
        if t.grad.len() != t.data.len() {
            t.grad = vec![0.0; t.data.len()];
            t.m = vec![0.0; t.data.len()];
            t.v = vec![0.0; t.data.len()];
        }
        &mut t.data
    }
}

/// A weight matrix quantized to int8 with per-row symmetric scales —
/// the storage format of the int8 inference backend.
///
/// Quantized from the original `[rows, cols]` (= `[d_out, d_in]`)
/// layout: each row is one output channel, contiguous over the
/// reduction dimension, which is exactly the `transb` orientation the
/// int8 matmul kernel consumes — no transpose needed. `value ≈
/// q[r][c] as f32 * scales[r]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    /// Row-major int8 values in `[-127, 127]`.
    pub q: Vec<i8>,
    /// One dequantization scale per row (`absmax / 127`; 0.0 for an
    /// all-zero row).
    pub scales: Vec<f32>,
    /// Output channels.
    pub rows: usize,
    /// Reduction dimension (input features).
    pub cols: usize,
}

impl QuantizedTensor {
    /// Quantizes an f32 `[rows, cols]` matrix row-by-row (symmetric,
    /// round-to-nearest-even, clamped to `[-127, 127]`) via the
    /// dispatched [`crate::kernels::quantize_row_i8`], so weight
    /// quantization is bit-identical across ISA tiers.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn quantize(data: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "quantize shape mismatch");
        let mut q = vec![0i8; rows * cols];
        let mut scales = vec![0.0f32; rows];
        for r in 0..rows {
            scales[r] = crate::kernels::quantize_row_i8(
                &data[r * cols..(r + 1) * cols],
                &mut q[r * cols..(r + 1) * cols],
            );
        }
        QuantizedTensor { q, scales, rows, cols }
    }

    /// Dequantizes back to f32 (tests and diagnostics; inference
    /// dequantizes on accumulate inside the kernel instead).
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for r in 0..self.rows {
            let s = self.scales[r];
            for (o, &qv) in out[r * self.cols..(r + 1) * self.cols]
                .iter_mut()
                .zip(&self.q[r * self.cols..(r + 1) * self.cols])
            {
                *o = qv as f32 * s;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn alloc_and_grad_accumulation() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let mut s = ParamStore::new();
        let id = s.alloc(4, 0.02, &mut rng);
        s.add_grad(id, &[1.0, 1.0, 1.0, 1.0]);
        s.add_grad(id, &[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(s.tensors[id].grad[0], 2.0);
        s.zero_grads();
        assert_eq!(s.tensors[id].grad[0], 0.0);
    }

    #[test]
    fn adam_moves_against_gradient() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let mut s = ParamStore::new();
        let id = s.alloc(1, 0.0, &mut rng);
        let before = s.data(id)[0];
        s.add_grad(id, &[1.0]);
        s.adam_step(0.1, 0.0, 1.0);
        assert!(s.data(id)[0] < before);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut s = ParamStore::new();
        let id = s.push(vec![1.0]);
        s.adam_step(0.1, 0.5, 1.0);
        assert!(s.data(id)[0] < 1.0);
    }

    #[test]
    fn init_is_roughly_normal() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let mut s = ParamStore::new();
        let id = s.alloc(10_000, 0.02, &mut rng);
        let mean: f32 = s.data(id).iter().sum::<f32>() / 10_000.0;
        let var: f32 = s.data(id).iter().map(|x| x * x).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.002, "mean {mean}");
        assert!((var.sqrt() - 0.02).abs() < 0.005, "std {}", var.sqrt());
    }

    #[test]
    fn quantized_tensor_round_trips_per_row() {
        let data = vec![1.0f32, -2.0, 0.5, 0.0, /* row 1 (all zero) */ 0.0, 0.0, 0.0, 0.0];
        let qt = QuantizedTensor::quantize(&data, 2, 4);
        assert_eq!(qt.scales[1], 0.0);
        assert!(qt.q[4..].iter().all(|&v| v == 0));
        let deq = qt.dequantize();
        for (d, q) in data.iter().zip(&deq) {
            // Per-element error bounded by half a quantization step.
            assert!((d - q).abs() <= qt.scales[0] * 0.5 + 1e-6, "{d} vs {q}");
        }
        // Largest-magnitude element hits ±127 exactly.
        assert_eq!(qt.q[1], -127);
    }
}
