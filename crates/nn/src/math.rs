//! Dense math kernels used by the Transformer (single-threaded f32).

/// `c[m,n] = a[m,k] @ b[k,n]`.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
    c
}

/// `c[m,n] = a[m,k] @ b[n,k]ᵀ` — the Linear-layer forward shape.
pub fn matmul_transb(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// `c[m,n] = a[k,m]ᵀ @ b[k,n]` — the weight-gradient shape.
pub fn matmul_transa(a: &[f32], b: &[f32], k: usize, m: usize, n: usize) -> Vec<f32> {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    let mut c = vec![0.0f32; m * n];
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
    c
}

/// In-place row-wise softmax over an `[rows, cols]` matrix.
pub fn softmax_rows(x: &mut [f32], rows: usize, cols: usize) {
    for r in 0..rows {
        let row = &mut x[r * cols..(r + 1) * cols];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum.max(1e-12);
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// GELU activation (tanh approximation, as BART uses).
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + ((0.797_884_6) * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`].
pub fn gelu_grad(x: f32) -> f32 {
    let c = 0.797_884_6f32;
    let u = c * (x + 0.044715 * x * x * x);
    let t = u.tanh();
    let du = c * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_identity() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // [2,2]
        let i = vec![1.0, 0.0, 0.0, 1.0];
        assert_eq!(matmul(&a, &i, 2, 2, 2), a);
    }

    #[test]
    fn transb_matches_manual() {
        // a [1,3] @ b [2,3]^T = [1,2]
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 0.0, 1.0, 0.5, 0.5, 0.5];
        let c = matmul_transb(&a, &b, 1, 3, 2);
        assert_eq!(c, vec![4.0, 3.0]);
    }

    #[test]
    fn transa_matches_manual() {
        // a [2,1]^T @ b [2,2] = [1,2]
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0, 5.0, 6.0];
        let c = matmul_transa(&a, &b, 2, 1, 2);
        assert_eq!(c, vec![13.0, 16.0]);
    }

    #[test]
    fn softmax_rows_normalize() {
        let mut x = vec![0.0, 0.0, 1000.0, 1000.0];
        softmax_rows(&mut x, 2, 2);
        assert!((x[0] - 0.5).abs() < 1e-6);
        assert!((x[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gelu_gradient_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.7, 3.0] {
            let eps = 1e-3;
            let num = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
            assert!((num - gelu_grad(x)).abs() < 1e-2, "x={x}: {num} vs {}", gelu_grad(x));
        }
    }
}
