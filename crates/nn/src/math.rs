//! Dense math kernels used by the Transformer (single-threaded f32).
//!
//! The hot kernels (`matmul_transb_into`, `matmul_xposed_into`,
//! `matmul_transb_batched`, and the max pass of [`log_softmax_topk`])
//! dispatch through [`crate::kernels`] to the best ISA tier the host
//! supports (AVX2 / NEON / scalar), all tiers bit-identical. The
//! training-only kernels below stay plain scalar code.

use crate::kernels;

/// Writes `c[m,n] = a[m,k] @ b[k,n]` into a caller-provided buffer
/// (accumulating into `c`'s zeroed contents; skips zero `a` entries,
/// which dropout-masked activations make common).
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    c.fill(0.0);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// `c[m,n] = a[m,k] @ b[k,n]` — allocating wrapper over [`matmul_into`],
/// kept for tests; non-test callers provide their own buffer.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    matmul_into(a, b, &mut c, m, k, n);
    c
}

/// `c[m,n] = a[m,k] @ b[n,k]ᵀ` — allocating wrapper over
/// [`matmul_transb_into`], kept for tests; non-test callers provide
/// their own buffer.
pub fn matmul_transb(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    matmul_transb_into(a, b, &mut c, m, k, n);
    c
}

/// Writes `c[m,n] = a[k,m]ᵀ @ b[k,n]` — the weight-gradient shape —
/// into a caller-provided buffer (zeroed first; skips zero `a` entries).
pub fn matmul_transa_into(a: &[f32], b: &[f32], c: &mut [f32], k: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    c.fill(0.0);
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// `c[m,n] = a[k,m]ᵀ @ b[k,n]` — allocating wrapper over
/// [`matmul_transa_into`], kept for tests.
pub fn matmul_transa(a: &[f32], b: &[f32], k: usize, m: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    matmul_transa_into(a, b, &mut c, k, m, n);
    c
}

/// In-place row-wise softmax over an `[rows, cols]` matrix.
///
/// Uses libm `exp` — this is the training/logits softmax. Inference
/// attention goes through [`crate::kernels::softmax_into`] instead,
/// which uses the shared polynomial `exp` so all ISA tiers agree
/// bit-for-bit.
pub fn softmax_rows(x: &mut [f32], rows: usize, cols: usize) {
    for r in 0..rows {
        let row = &mut x[r * cols..(r + 1) * cols];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum.max(1e-12);
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Writes `c[m,n] = a[m,k] @ b[n,k]ᵀ` into a caller-provided buffer —
/// the allocation-free variant of [`matmul_transb`], and the kernel the
/// batched decode path lives on.
///
/// Dispatches through [`crate::kernels`] to the active ISA tier. Every
/// tier implements the same lane-split accumulation semantics (8 lanes
/// by reduction index mod 8, fixed tree reduce — see the module docs of
/// [`crate::kernels`]), so results are bit-identical regardless of tier
/// and of which rows share a batch.
pub fn matmul_transb_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    kernels::matmul_transb_into(a, b, c, m, k, n);
}

/// Transposes `src[rows, cols]` into `dst[cols, rows]`.
pub fn transpose_into(src: &[f32], dst: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
}

/// `c[m,n] = a[m,k] @ bt[k,n]` with `bt` already transposed — the
/// orientation the batched decode path uses with pre-transposed weights
/// (output columns contiguous, so vector lanes span columns).
///
/// Dispatches through [`crate::kernels`]. All tiers implement the same
/// lane-split accumulation semantics as [`matmul_transb_into`], so
/// projecting through `bt` here yields **bit-identical** results to
/// `matmul_transb` against the untransposed weights — the invariant
/// that keeps scalar and batched decode interchangeable.
pub fn matmul_xposed_into(a: &[f32], bt: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(bt.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    kernels::matmul_xposed_into(a, bt, c, m, k, n);
}

/// Batched matmul over independent operand pairs living in strided arenas:
/// for each `bi < batch`, `c[bi][m,n] = a[bi][m,k] @ b[bi][n,k]ᵀ`, where
/// `a[bi]` starts at `a[bi * a_stride]`, and likewise for `b` and `c`.
/// Strides may exceed the matrix sizes (arena layouts with headroom).
#[allow(clippy::too_many_arguments)]
pub fn matmul_transb_batched(
    a: &[f32],
    a_stride: usize,
    b: &[f32],
    b_stride: usize,
    c: &mut [f32],
    c_stride: usize,
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert!(a_stride >= m * k && b_stride >= n * k && c_stride >= m * n);
    kernels::matmul_transb_batched(a, a_stride, b, b_stride, c, c_stride, batch, m, k, n);
}

/// In-place row-wise log-softmax over an `[rows, cols]` matrix: the proper
/// `x - max - ln(Σ exp(x - max))`, replacing the numerically lossy
/// `softmax` + `ln(max(p, 1e-12))` double pass the beam search used to do.
pub fn log_softmax_rows(x: &mut [f32], rows: usize, cols: usize) {
    for r in 0..rows {
        let row = &mut x[r * cols..(r + 1) * cols];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter() {
            sum += (v - max).exp();
        }
        let lse = max + sum.ln();
        for v in row.iter_mut() {
            *v -= lse;
        }
    }
}

/// Fused log-softmax + top-k selection over one logits row, without
/// sorting (or even normalizing) the full vocabulary. Two passes: one for
/// the max, one that accumulates `Σ exp(x - max)` while maintaining the k
/// best raw logits by linear insertion (k is the beam width, ≤ 8 in
/// practice, so the `O(cols · k)` worst case beats `O(cols · log cols)`
/// sorting by a wide margin and allocates only the k-slot output).
///
/// Returns `(token, log_prob)` pairs in descending log-prob order; ties
/// resolve to the lower index, matching what a stable descending sort of
/// the full vocabulary would select.
pub fn log_softmax_topk(row: &[f32], k: usize) -> Vec<(usize, f32)> {
    slade_obs::obs().count(slade_obs::KernelCtr::TopkCalls, 1);
    let k = k.max(1).min(row.len());
    // The max and exp-sum passes dispatch to the SIMD tier (the exp-sum
    // uses the kernel layer's lane-split accumulation and shared
    // polynomial exp, so its value does not depend on dispatch); only
    // the insertion pass below stays scalar, because its order is the
    // tie-breaking contract.
    let max = kernels::row_max(row);
    let sum = kernels::sum_exp(row, max);
    // `best` is kept sorted descending by logit; ties keep earlier indices
    // first because later candidates only displace strictly smaller ones.
    let mut best: Vec<(usize, f32)> = Vec::with_capacity(k + 1);
    for (i, &v) in row.iter().enumerate() {
        if best.len() < k || v > best[best.len() - 1].1 {
            let pos = best.partition_point(|&(_, bv)| bv >= v);
            best.insert(pos, (i, v));
            if best.len() > k {
                best.pop();
            }
        }
    }
    let lse = max + sum.ln();
    best.iter().map(|&(i, v)| (i, v - lse)).collect()
}

/// GELU activation (tanh approximation, as BART uses). Delegates to the
/// kernel layer's shared polynomial evaluation so the training path and
/// the dispatched SIMD decode path ([`kernels::gelu_into`]) compute the
/// same function bit-for-bit; `tanh` via libm would differ from the
/// vector tiers by a ulp.
pub fn gelu(x: f32) -> f32 {
    kernels::gelu_lane(x)
}

/// Derivative of [`gelu`].
pub fn gelu_grad(x: f32) -> f32 {
    let c = 0.797_884_6f32;
    let u = c * (x + 0.044715 * x * x * x);
    let t = u.tanh();
    let du = c * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_identity() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // [2,2]
        let i = vec![1.0, 0.0, 0.0, 1.0];
        assert_eq!(matmul(&a, &i, 2, 2, 2), a);
    }

    #[test]
    fn transb_matches_manual() {
        // a [1,3] @ b [2,3]^T = [1,2]
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 0.0, 1.0, 0.5, 0.5, 0.5];
        let c = matmul_transb(&a, &b, 1, 3, 2);
        assert_eq!(c, vec![4.0, 3.0]);
    }

    #[test]
    fn transa_matches_manual() {
        // a [2,1]^T @ b [2,2] = [1,2]
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0, 5.0, 6.0];
        let c = matmul_transa(&a, &b, 2, 1, 2);
        assert_eq!(c, vec![13.0, 16.0]);
    }

    #[test]
    fn softmax_rows_normalize() {
        let mut x = vec![0.0, 0.0, 1000.0, 1000.0];
        softmax_rows(&mut x, 2, 2);
        assert!((x[0] - 0.5).abs() < 1e-6);
        assert!((x[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_softmax_ln() {
        let logits = vec![0.5f32, -2.0, 3.25, 0.0, 1.0, -0.125];
        let mut a = logits.clone();
        log_softmax_rows(&mut a, 1, 6);
        let mut b = logits.clone();
        softmax_rows(&mut b, 1, 6);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y.ln()).abs() < 1e-5, "{x} vs {}", y.ln());
        }
        let total: f32 = a.iter().map(|v| v.exp()).sum();
        assert!((total - 1.0).abs() < 1e-5, "{total}");
    }

    #[test]
    fn topk_matches_full_sort_with_stable_ties() {
        let row = vec![1.0f32, 3.0, 3.0, -1.0, 2.0, 3.0, 0.0];
        let got = log_softmax_topk(&row, 4);
        // Full-sort reference with stable tie-breaking on index.
        let mut full = row.clone();
        log_softmax_rows(&mut full, 1, row.len());
        let mut idx: Vec<usize> = (0..row.len()).collect();
        idx.sort_by(|&a, &b| full[b].total_cmp(&full[a]));
        for (rank, &(i, lp)) in got.iter().enumerate() {
            assert_eq!(i, idx[rank], "rank {rank}");
            assert!((lp - full[i]).abs() < 1e-6);
        }
        // Ties 3.0@1, 3.0@2, 3.0@5 must come out in index order.
        assert_eq!(got[0].0, 1);
        assert_eq!(got[1].0, 2);
        assert_eq!(got[2].0, 5);
    }

    #[test]
    fn topk_handles_k_larger_than_row() {
        let row = vec![0.5f32, -0.5];
        let got = log_softmax_topk(&row, 10);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 0);
    }

    #[test]
    fn batched_transb_matches_unbatched() {
        // Two independent lanes in arenas with headroom.
        let a = vec![1.0, 2.0, 3.0, 0.0, /* lane 1 */ -1.0, 0.5, 2.0, 0.0];
        let b = vec![
            1.0, 0.0, 1.0, 0.5, 0.5, 0.5, 0.0, 0.0, /* lane 1 */ 2.0, 1.0, 0.0, 0.0, 1.0,
            1.0, 0.0, 0.0,
        ];
        let mut c = vec![0.0f32; 6];
        matmul_transb_batched(&a, 4, &b, 8, &mut c, 3, 2, 1, 3, 2);
        for lane in 0..2 {
            let expect =
                matmul_transb(&a[lane * 4..lane * 4 + 3], &b[lane * 8..lane * 8 + 6], 1, 3, 2);
            assert_eq!(&c[lane * 3..lane * 3 + 2], &expect[..]);
        }
    }

    #[test]
    fn matmul_transb_into_matches_alloc_version() {
        let a = vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = vec![0.5f32, -1.0, 2.0, 1.0, 0.0, 1.0];
        let expect = matmul_transb(&a, &b, 2, 3, 2);
        let mut c = vec![0.0f32; 4];
        matmul_transb_into(&a, &b, &mut c, 2, 3, 2);
        assert_eq!(c, expect);
    }

    #[test]
    fn gelu_gradient_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.7, 3.0] {
            let eps = 1e-3;
            let num = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
            assert!((num - gelu_grad(x)).abs() < 1e-2, "x={x}: {num} vs {}", gelu_grad(x));
        }
    }
}
