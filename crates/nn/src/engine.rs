//! The batched inference engine: beam-search scheduling over the seq2seq
//! model, extracted out of [`Seq2Seq`] so decode policy (scoring, length
//! normalization, early stop) and decode *scheduling* (which hypotheses
//! run together) live in one place.
//!
//! The engine interleaves the live beam lanes of **multiple independent
//! requests** into one decode batch (continuous-batching style): every
//! projection matmul runs once over all live lanes of all requests, lanes
//! of finished requests are compacted away by the arena gather, and each
//! request stops under its own policy. The per-hypothesis reference path
//! ([`InferenceEngine::decode_scalar`]) keeps the pre-refactor shape
//! (one [`crate::DecoderState`] per hypothesis, cloned per survivor) and
//! is property-tested to return identical hypotheses — see
//! `tests/engine_equiv.rs`.
//!
//! Scoring fixes relative to the pre-engine implementation, both also
//! applied to the scalar reference:
//! - log-probabilities come from a fused log-softmax + top-k
//!   ([`crate::math::log_softmax_topk`]) — one `logsumexp` pass and a
//!   k-slot selection instead of materializing a softmax over the whole
//!   vocabulary, sorting all of it, and clamping with `max(1e-12).ln()`;
//! - a request keeps decoding while any live hypothesis currently
//!   outscores (length-normalized) the k-th best finished one, instead
//!   of breaking as soon as `k` hypotheses finish — a live hypothesis
//!   that already outranks the finished set can no longer be masked by
//!   weak short ones (see [`beam_converged`] for the heuristic's
//!   remaining limit).

use crate::math::log_softmax_topk;
use crate::model::{DecoderState, Seq2Seq};

/// One decode job: source tokens plus decode parameters.
#[derive(Debug, Clone)]
pub struct DecodeRequest {
    /// Source-token sequence (truncated to the model's `max_len`).
    pub src: Vec<u32>,
    /// Beginning-of-sequence token id.
    pub bos: u32,
    /// End-of-sequence token id.
    pub eos: u32,
    /// Maximum tokens to decode.
    pub max_len: usize,
    /// Beam width (clamped to ≥ 1).
    pub beam: usize,
}

/// Beam-search scheduler over a [`Seq2Seq`] model.
pub struct InferenceEngine<'m> {
    model: &'m Seq2Seq,
}

/// One live hypothesis of one request.
struct Hyp {
    tokens: Vec<u32>,
    score: f32,
}

/// Book-keeping for one admitted request inside a [`DecodeSession`].
struct Slot {
    ticket: u64,
    bos: u32,
    eos: u32,
    beam: usize,
    budget: usize,
    steps: usize,
    cross_id: usize,
    live: Vec<Hyp>,
    done: Vec<(Vec<u32>, f32)>,
}

fn norm_score(score: f32, len: usize) -> f32 {
    score / len as f32
}

/// Early-stop heuristic: true when at least `beam` hypotheses are
/// finished and no live hypothesis *currently* outscores
/// (length-normalized) the `beam`-th best finished one. This is a
/// heuristic, not a bound — `score / len` can still rise as near-certain
/// tokens append (score falls toward a limit while `len` grows), so a
/// currently-worse hypothesis that would eventually win is cut. It is
/// strictly less premature than the old `done.len() >= beam` break
/// (which ignored live scores entirely), and termination stays
/// guaranteed by the per-request budget.
fn beam_converged(
    done: &[(Vec<u32>, f32)],
    beam: usize,
    live_norms: impl Iterator<Item = f32>,
) -> bool {
    if done.len() < beam {
        return false;
    }
    let mut norms: Vec<f32> = done.iter().map(|(t, s)| norm_score(*s, t.len())).collect();
    norms.sort_by(|a, b| b.total_cmp(a));
    let kth = norms[beam - 1];
    let best_live = live_norms.fold(f32::NEG_INFINITY, f32::max);
    best_live <= kth
}

/// Length-normalized ranking of finished (plus flushed unfinished)
/// hypotheses; strips BOS/EOS.
fn rank(mut done: Vec<(Vec<u32>, f32)>, beam: usize, bos: u32, eos: u32) -> Vec<Vec<u32>> {
    done.sort_by(|a, b| norm_score(b.1, b.0.len()).total_cmp(&norm_score(a.1, a.0.len())));
    done.into_iter()
        .take(beam)
        .map(|(p, _)| p.into_iter().filter(|&t| t != bos && t != eos).collect())
        .collect()
}

impl<'m> InferenceEngine<'m> {
    /// Wraps a model.
    pub fn new(model: &'m Seq2Seq) -> Self {
        InferenceEngine { model }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Seq2Seq {
        self.model
    }

    /// Decodes one request on the batched path.
    pub fn decode(&self, request: &DecodeRequest) -> Vec<Vec<u32>> {
        self.decode_batch(std::slice::from_ref(request)).pop().unwrap_or_default()
    }

    /// Opens a [`DecodeSession`] — the continuous-batching front-end:
    /// requests are admitted (possibly while other requests are
    /// mid-decode), stepped together, and returned as they finish.
    /// `cap_lanes` bounds concurrent beam lanes (the arena allocation);
    /// `cap_pos` bounds tokens decodable per lane (clamped to the model's
    /// positional table).
    pub fn session(&self, cap_lanes: usize, cap_pos: usize) -> DecodeSession<'m> {
        let cap_pos = cap_pos.min(self.model.cfg.max_len - 1).max(1);
        let cap_lanes = cap_lanes.max(1);
        DecodeSession {
            model: self.model,
            state: self.model.begin_decode_batch(cap_lanes, cap_pos),
            slots: Vec::new(),
            cap_lanes,
            cap_pos,
            reserved: 0,
            next_ticket: 0,
            decoded_tokens: 0,
        }
    }

    /// Decodes a set of independent requests as **one** interleaved batch:
    /// sources are encoded together ([`Seq2Seq::encode_batch`]), all live
    /// beam lanes step together through [`Seq2Seq::decode_step_batch`],
    /// and each request applies its own beam policy and stops
    /// independently (its lanes are compacted out of the arena, shrinking
    /// the batch). Returns, per request, up to `beam` hypotheses, best
    /// first, without BOS/EOS.
    ///
    /// This is the admit-everything-up-front special case of a
    /// [`DecodeSession`]; serving callers that want to feed new requests
    /// into the running batch as lanes free up use the session directly.
    pub fn decode_batch(&self, requests: &[DecodeRequest]) -> Vec<Vec<Vec<u32>>> {
        if requests.is_empty() {
            return Vec::new();
        }
        let cap_lanes: usize = requests.iter().map(|r| r.beam.max(1)).sum();
        let cap_pos = requests.iter().map(|r| r.max_len).max().unwrap_or(1);
        let mut session = self.session(cap_lanes, cap_pos);
        let refs: Vec<&DecodeRequest> = requests.iter().collect();
        let tickets = session.admit_many(&refs);
        let mut results: Vec<(u64, Vec<Vec<u32>>)> = Vec::with_capacity(requests.len());
        while !session.is_idle() {
            results.extend(session.step());
        }
        tickets
            .into_iter()
            .map(|t| {
                let at = results.iter().position(|(rt, _)| *rt == t).expect("ticket resolved");
                results.swap_remove(at).1
            })
            .collect()
    }

    /// Per-hypothesis reference decode: one KV-cached [`DecoderState`] per
    /// hypothesis, cloned for each survivor — the pre-refactor decode
    /// shape, kept under the same scoring and stop policy as
    /// [`InferenceEngine::decode_batch`] so the two paths are directly
    /// comparable (and property-tested identical).
    pub fn decode_scalar(&self, request: &DecodeRequest) -> Vec<Vec<u32>> {
        let m = self.model;
        let beam = request.beam.max(1);
        let src: Vec<u32> = request.src.iter().take(m.cfg.max_len).copied().collect();
        let mem = m.encode(&src);
        let s = src.len();
        let budget = request.max_len.min(m.cfg.max_len - 1).max(1);
        let mut live: Vec<(Vec<u32>, f32, DecoderState)> =
            vec![(vec![request.bos], 0.0, m.begin_decode(&mem, s))];
        let mut done: Vec<(Vec<u32>, f32)> = Vec::new();
        let mut step = 0usize;
        loop {
            let mut cands: Vec<(Vec<u32>, f32, usize)> = Vec::with_capacity(live.len() * beam);
            for (parent, (prefix, score, state)) in live.iter_mut().enumerate() {
                let logits = m.decode_step(state, *prefix.last().unwrap());
                for (tok, lp) in log_softmax_topk(&logits, beam) {
                    let mut t = prefix.clone();
                    t.push(tok as u32);
                    cands.push((t, *score + lp, parent));
                }
            }
            step += 1;
            cands.sort_by(|a, b| b.1.total_cmp(&a.1));
            cands.truncate(beam);
            let mut survivors: Vec<(Vec<u32>, f32, usize)> = Vec::new();
            for (t, sc, parent) in cands {
                if *t.last().unwrap() == request.eos {
                    done.push((t, sc));
                } else {
                    survivors.push((t, sc, parent));
                }
            }
            let converged = beam_converged(
                &done,
                beam,
                survivors.iter().map(|(t, sc, _)| norm_score(*sc, t.len())),
            );
            if survivors.is_empty() || step >= budget || converged {
                done.extend(survivors.into_iter().map(|(t, sc, _)| (t, sc)));
                break;
            }
            live = survivors
                .into_iter()
                .map(|(t, sc, parent)| (t, sc, live[parent].2.clone()))
                .collect();
        }
        rank(done, beam, request.bos, request.eos)
    }
}

/// A continuous-batching decode session: the engine-side admission seam.
///
/// Where [`InferenceEngine::decode_batch`] admits a fixed request set and
/// runs it to completion, a session keeps one [`BatchedDecoderState`]
/// alive across request lifetimes: callers [`DecodeSession::admit`] work
/// whenever [`DecodeSession::can_admit`] says a lane budget is free —
/// including while other requests are mid-decode — call
/// [`DecodeSession::step`] to advance every live lane one token, and
/// collect finished requests from the step's return value. Lanes of a
/// finished request are compacted out by the arena gather and its
/// cross-memory slot is recycled, so a shard can serve an unbounded
/// request stream at bounded memory.
///
/// Results are **independent of batch composition**: every kernel on the
/// step path computes each lane's row with the same summation order as
/// the single-lane path (see DESIGN.md §7.1), each lane attends only its
/// own cache, and the beam policy runs per request on a per-request step
/// counter — so a request decoded alongside any mix of neighbors, or
/// admitted at any point of a running batch, returns exactly the
/// hypotheses [`InferenceEngine::decode_scalar`] would.
pub struct DecodeSession<'m> {
    model: &'m Seq2Seq,
    state: crate::model::BatchedDecoderState,
    slots: Vec<Slot>,
    cap_lanes: usize,
    cap_pos: usize,
    /// Lanes reserved by active requests (each reserves its full beam
    /// width up front, the worst case its survivors can fan out to).
    reserved: usize,
    next_ticket: u64,
    decoded_tokens: u64,
}

impl<'m> DecodeSession<'m> {
    /// True when a request of this beam width can be admitted now:
    /// admission reserves `beam` lanes (the fan-out worst case) against
    /// the session's lane budget.
    pub fn can_admit(&self, beam: usize) -> bool {
        self.reserved + beam.max(1) <= self.cap_lanes
    }

    /// Lanes not reserved by any active request.
    pub fn free_lanes(&self) -> usize {
        self.cap_lanes - self.reserved
    }

    /// The session's lane budget.
    pub fn lane_capacity(&self) -> usize {
        self.cap_lanes
    }

    /// Live beam lanes right now (≤ reserved; a request's live lanes lag
    /// its reservation until the beam fans out).
    pub fn live_lanes(&self) -> usize {
        self.state.num_lanes()
    }

    /// Requests admitted but not yet finished.
    pub fn active_requests(&self) -> usize {
        self.slots.len()
    }

    /// True when no request is in flight.
    pub fn is_idle(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total tokens decoded by this session so far — one per live lane
    /// per [`DecodeSession::step`]. Monotonic; serving layers diff it
    /// between polls to report decode throughput.
    pub fn decoded_tokens(&self) -> u64 {
        self.decoded_tokens
    }

    /// Admits one request; returns its ticket (stable id handed back by
    /// the [`DecodeSession::step`] that finishes it).
    ///
    /// # Panics
    ///
    /// Panics when [`DecodeSession::can_admit`] is false for the request's
    /// beam width.
    pub fn admit(&mut self, request: &DecodeRequest) -> u64 {
        self.admit_many(&[request]).pop().expect("one ticket per request")
    }

    /// Admits a group of requests, encoding their sources as **one**
    /// batched encoder pass ([`Seq2Seq::encode_batch`]) — the grouped twin
    /// of [`DecodeSession::admit`] that serving callers use when draining
    /// an arrival queue, so encoder projections amortize across the group.
    ///
    /// # Panics
    ///
    /// Panics when the group's summed beam widths exceed the free lane
    /// budget.
    pub fn admit_many(&mut self, requests: &[&DecodeRequest]) -> Vec<u64> {
        let _timer = slade_obs::StageTimer::start(slade_obs::StageHist::Admit);
        let m = self.model;
        // Validate the whole group's reservation before the (expensive)
        // encoder pass, so a rejected group admits nothing at all.
        let group: usize = requests.iter().map(|r| r.beam.max(1)).sum();
        assert!(
            self.reserved + group <= self.cap_lanes,
            "admission over lane budget ({} reserved + {group} > {})",
            self.reserved,
            self.cap_lanes
        );
        let srcs: Vec<Vec<u32>> = requests
            .iter()
            .map(|r| r.src.iter().take(m.cfg.max_len).copied().collect())
            .collect();
        let src_refs: Vec<&[u32]> = srcs.iter().map(|s| s.as_slice()).collect();
        let mems = m.encode_batch(&src_refs);
        requests
            .iter()
            .zip(&mems)
            .map(|(r, mem)| {
                let beam = r.beam.max(1);
                let cross =
                    m.register_cross_memory(&mut self.state, mem, mem.len() / m.cfg.d_model);
                self.state.add_lane(cross);
                let ticket = self.next_ticket;
                self.next_ticket += 1;
                self.reserved += beam;
                self.slots.push(Slot {
                    ticket,
                    bos: r.bos,
                    eos: r.eos,
                    beam,
                    budget: r.max_len.min(self.cap_pos).max(1),
                    steps: 0,
                    cross_id: cross,
                    live: vec![Hyp { tokens: vec![r.bos], score: 0.0 }],
                    done: Vec::new(),
                });
                ticket
            })
            .collect()
    }

    /// Advances every live lane one decode step and returns the requests
    /// that finished on it as `(ticket, hypotheses)` — up to `beam`
    /// hypotheses each, best first, without BOS/EOS. Finished requests'
    /// lanes are compacted out of the arena and their reservations and
    /// cross memories freed, so [`DecodeSession::can_admit`] may turn true
    /// for a waiting request. No-op (empty vec) when idle.
    pub fn step(&mut self) -> Vec<(u64, Vec<Vec<u32>>)> {
        if self.slots.is_empty() {
            return Vec::new();
        }
        let m = self.model;
        let vocab = m.cfg.vocab;
        let mut tokens: Vec<u32> = Vec::with_capacity(self.state.num_lanes());
        for slot in &self.slots {
            for hyp in &slot.live {
                tokens.push(*hyp.tokens.last().unwrap());
            }
        }
        let logits = m.decode_step_batch(&mut self.state, &tokens);
        self.decoded_tokens += tokens.len() as u64;
        // Times the whole scoring section (top-k + survivor selection for
        // every slot) as one sample; per-call timing of log_softmax_topk
        // would cost more than the kernel itself.
        let score_timer = slade_obs::StageTimer::start(slade_obs::StageHist::Score);
        let mut parents: Vec<usize> = Vec::with_capacity(tokens.len());
        let mut lane_base = 0usize;
        for slot in self.slots.iter_mut() {
            let lanes = slot.live.len();
            let mut cands: Vec<(Vec<u32>, f32, usize)> = Vec::with_capacity(lanes * slot.beam);
            for (i, hyp) in slot.live.iter().enumerate() {
                let row = &logits[(lane_base + i) * vocab..(lane_base + i + 1) * vocab];
                for (tok, lp) in log_softmax_topk(row, slot.beam) {
                    let mut t = hyp.tokens.clone();
                    t.push(tok as u32);
                    cands.push((t, hyp.score + lp, lane_base + i));
                }
            }
            cands.sort_by(|a, b| b.1.total_cmp(&a.1));
            cands.truncate(slot.beam);
            let mut survivors: Vec<(Hyp, usize)> = Vec::new();
            for (t, sc, parent) in cands {
                if *t.last().unwrap() == slot.eos {
                    slot.done.push((t, sc));
                } else {
                    survivors.push((Hyp { tokens: t, score: sc }, parent));
                }
            }
            slot.steps += 1;
            let converged = beam_converged(
                &slot.done,
                slot.beam,
                survivors.iter().map(|(h, _)| norm_score(h.score, h.tokens.len())),
            );
            if survivors.is_empty() || slot.steps >= slot.budget || converged {
                // Unfinished survivors still compete in the ranking,
                // matching the scalar reference.
                slot.done.extend(survivors.into_iter().map(|(h, _)| (h.tokens, h.score)));
                slot.live = Vec::new();
            } else {
                slot.live = Vec::with_capacity(survivors.len());
                for (h, parent) in survivors {
                    parents.push(parent);
                    slot.live.push(h);
                }
            }
            lane_base += lanes;
        }
        self.state.reorder(&parents);
        drop(score_timer);
        let mut finished = Vec::new();
        let mut i = 0usize;
        while i < self.slots.len() {
            if self.slots[i].live.is_empty() {
                let slot = self.slots.remove(i);
                self.reserved -= slot.beam;
                self.state.release_cross_memory(slot.cross_id);
                finished.push((slot.ticket, rank(slot.done, slot.beam, slot.bos, slot.eos)));
            } else {
                i += 1;
            }
        }
        finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TransformerConfig;

    fn trained_tiny() -> Seq2Seq {
        let mut m = Seq2Seq::new(TransformerConfig::tiny(16), 17);
        let pairs: [(&[u32], &[u32]); 2] = [(&[4, 5, 6], &[9, 10, 11]), (&[6, 5], &[11, 9])];
        for _ in 0..40 {
            for (src, tgt) in pairs {
                let mut dec = vec![1u32];
                dec.extend_from_slice(tgt);
                let mut labels = tgt.to_vec();
                labels.push(2);
                m.zero_grads();
                m.train_pair(src, &dec, &labels);
                m.adam_step(3e-3, 0.0, 1.0);
            }
        }
        m
    }

    #[test]
    fn batched_single_request_matches_scalar() {
        let m = trained_tiny();
        let engine = InferenceEngine::new(&m);
        for beam in [1usize, 2, 5] {
            let req = DecodeRequest { src: vec![4, 5, 6], bos: 1, eos: 2, max_len: 10, beam };
            assert_eq!(engine.decode(&req), engine.decode_scalar(&req), "beam {beam}");
        }
    }

    #[test]
    fn interleaved_requests_match_individual_decodes() {
        let m = trained_tiny();
        let engine = InferenceEngine::new(&m);
        let reqs: Vec<DecodeRequest> = [
            (vec![4u32, 5, 6], 3usize),
            (vec![6u32, 5], 5),
            (vec![5u32], 1),
            (vec![4u32, 6], 2),
        ]
        .into_iter()
        .map(|(src, beam)| DecodeRequest { src, bos: 1, eos: 2, max_len: 9, beam })
        .collect();
        let batched = engine.decode_batch(&reqs);
        for (req, got) in reqs.iter().zip(&batched) {
            assert_eq!(got, &engine.decode_scalar(req), "src {:?}", req.src);
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let m = Seq2Seq::new(TransformerConfig::tiny(16), 1);
        assert!(InferenceEngine::new(&m).decode_batch(&[]).is_empty());
    }

    #[test]
    fn mid_decode_admission_matches_scalar() {
        // A request admitted while another is mid-decode must return
        // exactly what it returns decoded alone — the invariant the
        // serving runtime's equivalence rests on.
        let m = trained_tiny();
        let engine = InferenceEngine::new(&m);
        let a = DecodeRequest { src: vec![4, 5, 6], bos: 1, eos: 2, max_len: 9, beam: 3 };
        let b = DecodeRequest { src: vec![6, 5], bos: 1, eos: 2, max_len: 9, beam: 2 };
        let c = DecodeRequest { src: vec![5], bos: 1, eos: 2, max_len: 9, beam: 5 };
        let mut session = engine.session(10, 9);
        let mut results: Vec<(u64, Vec<Vec<u32>>)> = Vec::new();
        let ta = session.admit(&a);
        results.extend(session.step());
        results.extend(session.step());
        let tb = session.admit(&b); // joins a running batch
        results.extend(session.step());
        let tc = session.admit(&c); // joins later still
        while !session.is_idle() {
            results.extend(session.step());
        }
        for (ticket, req) in [(ta, &a), (tb, &b), (tc, &c)] {
            let got = &results.iter().find(|(t, _)| *t == ticket).unwrap().1;
            assert_eq!(got, &engine.decode_scalar(req), "src {:?}", req.src);
        }
    }

    #[test]
    fn finished_requests_free_lanes_for_admission() {
        let m = trained_tiny();
        let engine = InferenceEngine::new(&m);
        let req = DecodeRequest { src: vec![4, 5, 6], bos: 1, eos: 2, max_len: 6, beam: 5 };
        // Capacity for exactly one beam-5 request at a time.
        let mut session = engine.session(5, 6);
        let expected = engine.decode_scalar(&req);
        for round in 0..3 {
            assert!(session.can_admit(req.beam), "round {round} should have free lanes");
            let ticket = session.admit(&req);
            assert!(!session.can_admit(req.beam), "budget must be exhausted while live");
            let mut got = None;
            while got.is_none() {
                for (t, beams) in session.step() {
                    assert_eq!(t, ticket);
                    got = Some(beams);
                }
            }
            assert_eq!(got.unwrap(), expected, "round {round} diverged");
            assert!(session.is_idle());
            assert_eq!(session.live_lanes(), 0);
        }
    }

    #[test]
    fn converged_stop_waits_for_stronger_live_hypothesis() {
        // Synthetic check of the policy helper itself: a live hypothesis
        // with a better normalized score must keep the beam alive.
        let done = vec![(vec![1, 7, 2], -6.0f32)]; // norm -2.0
        assert!(!beam_converged(&done, 1, [-1.0f32].into_iter())); // live -1.0 beats -2.0
        assert!(beam_converged(&done, 1, [-3.0f32].into_iter()));
        assert!(!beam_converged(&done, 2, [-3.0f32].into_iter())); // not enough done
    }
}
