//! The batched inference engine: beam-search scheduling over the seq2seq
//! model, extracted out of [`Seq2Seq`] so decode policy (scoring, length
//! normalization, early stop) and decode *scheduling* (which hypotheses
//! run together) live in one place.
//!
//! The engine interleaves the live beam lanes of **multiple independent
//! requests** into one decode batch (continuous-batching style): every
//! projection matmul runs once over all live lanes of all requests, lanes
//! of finished requests are compacted away by the arena gather, and each
//! request stops under its own policy. The per-hypothesis reference path
//! ([`InferenceEngine::decode_scalar`]) keeps the pre-refactor shape
//! (one [`crate::DecoderState`] per hypothesis, cloned per survivor) and
//! is property-tested to return identical hypotheses — see
//! `tests/engine_equiv.rs`.
//!
//! Scoring fixes relative to the pre-engine implementation, both also
//! applied to the scalar reference:
//! - log-probabilities come from a fused log-softmax + top-k
//!   ([`crate::math::log_softmax_topk`]) — one `logsumexp` pass and a
//!   k-slot selection instead of materializing a softmax over the whole
//!   vocabulary, sorting all of it, and clamping with `max(1e-12).ln()`;
//! - a request keeps decoding while any live hypothesis currently
//!   outscores (length-normalized) the k-th best finished one, instead
//!   of breaking as soon as `k` hypotheses finish — a live hypothesis
//!   that already outranks the finished set can no longer be masked by
//!   weak short ones (see [`beam_converged`] for the heuristic's
//!   remaining limit).

use crate::math::log_softmax_topk;
use crate::model::{DecoderState, Seq2Seq};

/// One decode job: source tokens plus decode parameters.
#[derive(Debug, Clone)]
pub struct DecodeRequest {
    /// Source-token sequence (truncated to the model's `max_len`).
    pub src: Vec<u32>,
    /// Beginning-of-sequence token id.
    pub bos: u32,
    /// End-of-sequence token id.
    pub eos: u32,
    /// Maximum tokens to decode.
    pub max_len: usize,
    /// Beam width (clamped to ≥ 1).
    pub beam: usize,
}

/// Beam-search scheduler over a [`Seq2Seq`] model.
pub struct InferenceEngine<'m> {
    model: &'m Seq2Seq,
}

/// One live hypothesis of one request.
struct Hyp {
    tokens: Vec<u32>,
    score: f32,
}

/// Book-keeping for one request inside a batch.
struct Progress {
    beam: usize,
    eos: u32,
    budget: usize,
    live: Vec<Hyp>,
    done: Vec<(Vec<u32>, f32)>,
    stopped: bool,
}

fn norm_score(score: f32, len: usize) -> f32 {
    score / len as f32
}

/// Early-stop heuristic: true when at least `beam` hypotheses are
/// finished and no live hypothesis *currently* outscores
/// (length-normalized) the `beam`-th best finished one. This is a
/// heuristic, not a bound — `score / len` can still rise as near-certain
/// tokens append (score falls toward a limit while `len` grows), so a
/// currently-worse hypothesis that would eventually win is cut. It is
/// strictly less premature than the old `done.len() >= beam` break
/// (which ignored live scores entirely), and termination stays
/// guaranteed by the per-request budget.
fn beam_converged(
    done: &[(Vec<u32>, f32)],
    beam: usize,
    live_norms: impl Iterator<Item = f32>,
) -> bool {
    if done.len() < beam {
        return false;
    }
    let mut norms: Vec<f32> = done.iter().map(|(t, s)| norm_score(*s, t.len())).collect();
    norms.sort_by(|a, b| b.total_cmp(a));
    let kth = norms[beam - 1];
    let best_live = live_norms.fold(f32::NEG_INFINITY, f32::max);
    best_live <= kth
}

/// Length-normalized ranking of finished (plus flushed unfinished)
/// hypotheses; strips BOS/EOS.
fn rank(mut done: Vec<(Vec<u32>, f32)>, beam: usize, bos: u32, eos: u32) -> Vec<Vec<u32>> {
    done.sort_by(|a, b| norm_score(b.1, b.0.len()).total_cmp(&norm_score(a.1, a.0.len())));
    done.into_iter()
        .take(beam)
        .map(|(p, _)| p.into_iter().filter(|&t| t != bos && t != eos).collect())
        .collect()
}

impl<'m> InferenceEngine<'m> {
    /// Wraps a model.
    pub fn new(model: &'m Seq2Seq) -> Self {
        InferenceEngine { model }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Seq2Seq {
        self.model
    }

    /// Decodes one request on the batched path.
    pub fn decode(&self, request: &DecodeRequest) -> Vec<Vec<u32>> {
        self.decode_batch(std::slice::from_ref(request)).pop().unwrap_or_default()
    }

    /// Decodes a set of independent requests as **one** interleaved batch:
    /// sources are encoded together ([`Seq2Seq::encode_batch`]), all live
    /// beam lanes step together through [`Seq2Seq::decode_step_batch`],
    /// and each request applies its own beam policy and stops
    /// independently (its lanes are compacted out of the arena, shrinking
    /// the batch). Returns, per request, up to `beam` hypotheses, best
    /// first, without BOS/EOS.
    pub fn decode_batch(&self, requests: &[DecodeRequest]) -> Vec<Vec<Vec<u32>>> {
        let m = self.model;
        if requests.is_empty() {
            return Vec::new();
        }
        let vocab = m.cfg.vocab;
        let srcs: Vec<Vec<u32>> = requests
            .iter()
            .map(|r| r.src.iter().take(m.cfg.max_len).copied().collect())
            .collect();
        let src_refs: Vec<&[u32]> = srcs.iter().map(|s| s.as_slice()).collect();
        let mems = m.encode_batch(&src_refs);
        let budgets: Vec<usize> =
            requests.iter().map(|r| r.max_len.min(m.cfg.max_len - 1).max(1)).collect();
        let cap_lanes: usize = requests.iter().map(|r| r.beam.max(1)).sum();
        let cap_pos = budgets.iter().copied().max().unwrap_or(1);
        let mut state = m.begin_decode_batch(cap_lanes, cap_pos);
        let mut reqs: Vec<Progress> = Vec::with_capacity(requests.len());
        for ((r, mem), budget) in requests.iter().zip(&mems).zip(&budgets) {
            let cross = m.register_cross_memory(&mut state, mem, mem.len() / m.cfg.d_model);
            state.add_lane(cross);
            reqs.push(Progress {
                beam: r.beam.max(1),
                eos: r.eos,
                budget: *budget,
                live: vec![Hyp { tokens: vec![r.bos], score: 0.0 }],
                done: Vec::new(),
                stopped: false,
            });
        }
        let mut step = 0usize;
        let mut tokens: Vec<u32> = Vec::with_capacity(cap_lanes);
        let mut parents: Vec<usize> = Vec::with_capacity(cap_lanes);
        loop {
            tokens.clear();
            for rq in &reqs {
                if !rq.stopped {
                    for hyp in &rq.live {
                        tokens.push(*hyp.tokens.last().unwrap());
                    }
                }
            }
            if tokens.is_empty() {
                break;
            }
            let logits = m.decode_step_batch(&mut state, &tokens);
            step += 1;
            parents.clear();
            let mut lane_base = 0usize;
            for rq in reqs.iter_mut() {
                if rq.stopped {
                    continue;
                }
                let lanes = rq.live.len();
                let mut cands: Vec<(Vec<u32>, f32, usize)> =
                    Vec::with_capacity(lanes * rq.beam);
                for (i, hyp) in rq.live.iter().enumerate() {
                    let row = &logits[(lane_base + i) * vocab..(lane_base + i + 1) * vocab];
                    for (tok, lp) in log_softmax_topk(row, rq.beam) {
                        let mut t = hyp.tokens.clone();
                        t.push(tok as u32);
                        cands.push((t, hyp.score + lp, lane_base + i));
                    }
                }
                cands.sort_by(|a, b| b.1.total_cmp(&a.1));
                cands.truncate(rq.beam);
                let mut survivors: Vec<(Hyp, usize)> = Vec::new();
                for (t, sc, parent) in cands {
                    if *t.last().unwrap() == rq.eos {
                        rq.done.push((t, sc));
                    } else {
                        survivors.push((Hyp { tokens: t, score: sc }, parent));
                    }
                }
                let converged = beam_converged(
                    &rq.done,
                    rq.beam,
                    survivors.iter().map(|(h, _)| norm_score(h.score, h.tokens.len())),
                );
                if survivors.is_empty() || step >= rq.budget || converged {
                    rq.stopped = true;
                    // Unfinished survivors still compete in the ranking,
                    // matching the scalar reference.
                    rq.done.extend(survivors.into_iter().map(|(h, _)| (h.tokens, h.score)));
                    rq.live = Vec::new();
                } else {
                    rq.live = Vec::with_capacity(survivors.len());
                    for (h, parent) in survivors {
                        parents.push(parent);
                        rq.live.push(h);
                    }
                }
                lane_base += lanes;
            }
            state.reorder(&parents);
        }
        reqs.into_iter()
            .zip(requests)
            .map(|(rq, r)| rank(rq.done, r.beam.max(1), r.bos, r.eos))
            .collect()
    }

    /// Per-hypothesis reference decode: one KV-cached [`DecoderState`] per
    /// hypothesis, cloned for each survivor — the pre-refactor decode
    /// shape, kept under the same scoring and stop policy as
    /// [`InferenceEngine::decode_batch`] so the two paths are directly
    /// comparable (and property-tested identical).
    pub fn decode_scalar(&self, request: &DecodeRequest) -> Vec<Vec<u32>> {
        let m = self.model;
        let beam = request.beam.max(1);
        let src: Vec<u32> = request.src.iter().take(m.cfg.max_len).copied().collect();
        let mem = m.encode(&src);
        let s = src.len();
        let budget = request.max_len.min(m.cfg.max_len - 1).max(1);
        let mut live: Vec<(Vec<u32>, f32, DecoderState)> =
            vec![(vec![request.bos], 0.0, m.begin_decode(&mem, s))];
        let mut done: Vec<(Vec<u32>, f32)> = Vec::new();
        let mut step = 0usize;
        loop {
            let mut cands: Vec<(Vec<u32>, f32, usize)> = Vec::with_capacity(live.len() * beam);
            for (parent, (prefix, score, state)) in live.iter_mut().enumerate() {
                let logits = m.decode_step(state, *prefix.last().unwrap());
                for (tok, lp) in log_softmax_topk(&logits, beam) {
                    let mut t = prefix.clone();
                    t.push(tok as u32);
                    cands.push((t, *score + lp, parent));
                }
            }
            step += 1;
            cands.sort_by(|a, b| b.1.total_cmp(&a.1));
            cands.truncate(beam);
            let mut survivors: Vec<(Vec<u32>, f32, usize)> = Vec::new();
            for (t, sc, parent) in cands {
                if *t.last().unwrap() == request.eos {
                    done.push((t, sc));
                } else {
                    survivors.push((t, sc, parent));
                }
            }
            let converged = beam_converged(
                &done,
                beam,
                survivors.iter().map(|(t, sc, _)| norm_score(*sc, t.len())),
            );
            if survivors.is_empty() || step >= budget || converged {
                done.extend(survivors.into_iter().map(|(t, sc, _)| (t, sc)));
                break;
            }
            live = survivors
                .into_iter()
                .map(|(t, sc, parent)| (t, sc, live[parent].2.clone()))
                .collect();
        }
        rank(done, beam, request.bos, request.eos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TransformerConfig;

    fn trained_tiny() -> Seq2Seq {
        let mut m = Seq2Seq::new(TransformerConfig::tiny(16), 17);
        let pairs: [(&[u32], &[u32]); 2] = [(&[4, 5, 6], &[9, 10, 11]), (&[6, 5], &[11, 9])];
        for _ in 0..40 {
            for (src, tgt) in pairs {
                let mut dec = vec![1u32];
                dec.extend_from_slice(tgt);
                let mut labels = tgt.to_vec();
                labels.push(2);
                m.zero_grads();
                m.train_pair(src, &dec, &labels);
                m.adam_step(3e-3, 0.0, 1.0);
            }
        }
        m
    }

    #[test]
    fn batched_single_request_matches_scalar() {
        let m = trained_tiny();
        let engine = InferenceEngine::new(&m);
        for beam in [1usize, 2, 5] {
            let req = DecodeRequest { src: vec![4, 5, 6], bos: 1, eos: 2, max_len: 10, beam };
            assert_eq!(engine.decode(&req), engine.decode_scalar(&req), "beam {beam}");
        }
    }

    #[test]
    fn interleaved_requests_match_individual_decodes() {
        let m = trained_tiny();
        let engine = InferenceEngine::new(&m);
        let reqs: Vec<DecodeRequest> = [
            (vec![4u32, 5, 6], 3usize),
            (vec![6u32, 5], 5),
            (vec![5u32], 1),
            (vec![4u32, 6], 2),
        ]
        .into_iter()
        .map(|(src, beam)| DecodeRequest { src, bos: 1, eos: 2, max_len: 9, beam })
        .collect();
        let batched = engine.decode_batch(&reqs);
        for (req, got) in reqs.iter().zip(&batched) {
            assert_eq!(got, &engine.decode_scalar(req), "src {:?}", req.src);
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let m = Seq2Seq::new(TransformerConfig::tiny(16), 1);
        assert!(InferenceEngine::new(&m).decode_batch(&[]).is_empty());
    }

    #[test]
    fn converged_stop_waits_for_stronger_live_hypothesis() {
        // Synthetic check of the policy helper itself: a live hypothesis
        // with a better normalized score must keep the beam alive.
        let done = vec![(vec![1, 7, 2], -6.0f32)]; // norm -2.0
        assert!(!beam_converged(&done, 1, [-1.0f32].into_iter())); // live -1.0 beats -2.0
        assert!(beam_converged(&done, 1, [-3.0f32].into_iter()));
        assert!(!beam_converged(&done, 2, [-3.0f32].into_iter())); // not enough done
    }
}
