//! Rule-based lifter: the Ghidra stand-in.
//!
//! Translates parsed assembly into compilable-but-unreadable C, the way
//! industrial decompilers do: machine registers become `unsigned long`
//! locals, the stack becomes a byte array, control flow becomes labels and
//! `goto`s, and memory accesses stay as literal casts. Like Ghidra (paper
//! §VII-D), it does **not** invent external types or signatures — extern
//! call arities are guessed from argument-register writes, floating-point
//! constants are recovered only from recognizable bit patterns, and vector
//! instructions are *not supported* (`-O3` x86 loops fail to lift, which is
//! exactly the collapse the paper measures for Ghidra on optimized code).

use slade_asm::{AsmFunction, Inst, Isa, Line, Operand};
use std::collections::HashMap;
use std::fmt;

/// Why a function could not be lifted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiftError(pub String);

/// Operand accessor that converts malformed (truncated) operand lists into
/// lift errors instead of index panics — hostile assembly must lift-fail.
fn arg(ops: &[Operand], i: usize) -> Result<&Operand, LiftError> {
    ops.get(i).ok_or_else(|| LiftError(format!("missing operand {i}")))
}

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lift error: {}", self.0)
    }
}

impl std::error::Error for LiftError {}

/// Lifts one function to C text.
///
/// # Errors
///
/// Fails on instructions outside the supported subset (vector ops, unknown
/// mnemonics) — the Ghidra-like failure mode on optimized code.
pub fn lift(
    func: &AsmFunction,
    isa: Isa,
    rodata: &HashMap<String, Vec<u8>>,
) -> Result<String, LiftError> {
    match isa {
        Isa::X86_64 => X86Lifter::new(func, rodata).lift(),
        Isa::Arm64 => ArmLifter::new(func, rodata).lift(),
    }
}

const X86_ARGS: [&str; 6] = ["rdi", "rsi", "rdx", "rcx", "r8", "r9"];

struct X86Lifter<'a> {
    f: &'a AsmFunction,
    rodata: &'a HashMap<String, Vec<u8>>,
    body: Vec<String>,
    used_regs: Vec<String>,
    used_xmm: Vec<usize>,
    pending_cmp: Option<(String, String, char)>, // (lhs, rhs, width: 'l'|'q'|'f')
    const_in_reg: HashMap<String, i64>,
    armed_int: Vec<usize>,
    armed_f: Vec<usize>,
    strings: Vec<(String, String)>,
    uses_cmp_tmps: bool,
}

impl<'a> X86Lifter<'a> {
    fn new(f: &'a AsmFunction, rodata: &'a HashMap<String, Vec<u8>>) -> Self {
        X86Lifter {
            f,
            rodata,
            body: Vec::new(),
            used_regs: Vec::new(),
            used_xmm: Vec::new(),
            pending_cmp: None,
            const_in_reg: HashMap::new(),
            armed_int: Vec::new(),
            armed_f: Vec::new(),
            strings: Vec::new(),
            uses_cmp_tmps: false,
        }
    }

    fn reg64(&mut self, name: &str) -> String {
        let base = canonical_x86(name);
        if !self.used_regs.contains(&base) {
            self.used_regs.push(base.clone());
        }
        format!("r_{base}")
    }

    fn xmm(&mut self, n: usize) -> String {
        if !self.used_xmm.contains(&n) {
            self.used_xmm.push(n);
        }
        format!("f_{n}")
    }

    /// Reads an operand as a C expression of the given width suffix.
    fn read(&mut self, op: &Operand, width: char) -> Result<String, LiftError> {
        Ok(match op {
            Operand::Imm(v) => format!("{v}"),
            Operand::Reg(r) if r.starts_with("xmm") => {
                let n: usize = r[3..].parse().unwrap_or(0);
                self.xmm(n)
            }
            Operand::Reg(r) => {
                let v = self.reg64(r);
                match width {
                    'b' => format!("(unsigned char){v}"),
                    'w' => format!("(unsigned short){v}"),
                    'l' => format!("(unsigned int){v}"),
                    _ => v,
                }
            }
            Operand::Mem { .. } | Operand::RipSym(_) => {
                let addr = self.address_of(op)?;
                let ty = match width {
                    'b' => "unsigned char",
                    'w' => "unsigned short",
                    'l' => "unsigned int",
                    _ => "unsigned long",
                };
                format!("*({ty}*)({addr})")
            }
            other => return Err(LiftError(format!("operand {other:?}"))),
        })
    }

    fn address_of(&mut self, op: &Operand) -> Result<String, LiftError> {
        match op {
            Operand::Mem { disp, base, index, scale } => {
                let mut parts = Vec::new();
                if let Some(b) = base {
                    parts.push(self.reg64(b));
                }
                if let Some(ix) = index {
                    let r = self.reg64(ix);
                    parts.push(format!("{r} * {scale}"));
                }
                if *disp != 0 || parts.is_empty() {
                    parts.push(format!("{disp}"));
                }
                Ok(parts.join(" + "))
            }
            Operand::RipSym(sym) => {
                if let Some(bytes) = self.rodata.get(sym) {
                    let var = format!("lc_{}", self.strings.len());
                    let text: String = bytes[..bytes.len().saturating_sub(1)]
                        .iter()
                        .map(|&b| escape_c_byte(b))
                        .collect();
                    // Reuse existing entry for the same label.
                    if let Some((v, _)) = self.strings.iter().find(|(_, t)| *t == text) {
                        return Ok(format!("(unsigned long){}", v.clone()));
                    }
                    self.strings.push((var.clone(), text));
                    Ok(format!("(unsigned long){var}"))
                } else {
                    Ok(format!("(unsigned long)&{sym}"))
                }
            }
            _ => Err(LiftError("not an address".into())),
        }
    }

    fn write(&mut self, op: &Operand, value: String, width: char) -> Result<(), LiftError> {
        match op {
            Operand::Reg(r) if r.starts_with("xmm") => {
                let n: usize = r[3..].parse().unwrap_or(0);
                let v = self.xmm(n);
                self.body.push(format!("{v} = {value};"));
            }
            Operand::Reg(r) => {
                let v = self.reg64(r);
                let expr = match width {
                    'l' => format!("(unsigned int)({value})"),
                    'b' => format!("({v} & ~255UL) | (unsigned char)({value})"),
                    'w' => format!("({v} & ~65535UL) | (unsigned short)({value})"),
                    _ => format!("({value})"),
                };
                self.body.push(format!("{v} = {expr};"));
            }
            Operand::Mem { .. } | Operand::RipSym(_) => {
                let addr = self.address_of(op)?;
                let ty = match width {
                    'b' => "unsigned char",
                    'w' => "unsigned short",
                    'l' => "unsigned int",
                    _ => "unsigned long",
                };
                self.body.push(format!("*({ty}*)({addr}) = {value};"));
            }
            other => return Err(LiftError(format!("write operand {other:?}"))),
        }
        Ok(())
    }

    fn cond_expr(&self, cc: &str) -> Result<String, LiftError> {
        let Some((a, b, width)) = &self.pending_cmp else {
            return Err(LiftError(format!("condition `{cc}` without compare")));
        };
        let (sa, sb, ua, ub) = match width {
            'l' => (
                format!("(int)({a})"),
                format!("(int)({b})"),
                format!("(unsigned int)({a})"),
                format!("(unsigned int)({b})"),
            ),
            'f' => (a.clone(), b.clone(), a.clone(), b.clone()),
            _ => (
                format!("(long)({a})"),
                format!("(long)({b})"),
                format!("({a})"),
                format!("({b})"),
            ),
        };
        Ok(match cc {
            "e" => format!("{sa} == {sb}"),
            "ne" => format!("{sa} != {sb}"),
            "l" => format!("{sa} < {sb}"),
            "le" => format!("{sa} <= {sb}"),
            "g" => format!("{sa} > {sb}"),
            "ge" => format!("{sa} >= {sb}"),
            "b" => format!("{ua} < {ub}"),
            "be" => format!("{ua} <= {ub}"),
            "a" => format!("{ua} > {ub}"),
            "ae" => format!("{ua} >= {ub}"),
            other => return Err(LiftError(format!("condition `{other}`"))),
        })
    }

    fn lift(mut self) -> Result<String, LiftError> {
        // Determine parameters: argument registers read before written.
        let (params, uses_xmm_args) = x86_params(self.f);
        let lines: Vec<Line> = self.f.lines.clone();
        let mut i = 0usize;
        while i < lines.len() {
            let line = &lines[i];
            i += 1;
            match line {
                Line::Label(l) => {
                    self.body.push(format!("{}: ;", label_c(l)));
                    self.pending_cmp = None;
                    self.const_in_reg.clear();
                    self.armed_int.clear();
                    self.armed_f.clear();
                }
                Line::Inst(inst) => {
                    // Pattern: movl $bits, %eax ; movd %eax, %xmm0 (float const)
                    if inst.mnemonic == "movd" || (inst.mnemonic == "movq" && is_xmm_dst(inst))
                    {
                        if let (Operand::Reg(src), Operand::Reg(dst)) =
                            (&inst.operands[0], &inst.operands[1])
                        {
                            if dst.starts_with("xmm") {
                                let base = canonical_x86(src);
                                if let Some(&bits) = self.const_in_reg.get(&base) {
                                    let n: usize =
                                        dst.strip_prefix("xmm").unwrap().parse().unwrap_or(0);
                                    let var = self.xmm(n);
                                    let lit = if inst.mnemonic == "movd" {
                                        format!("{:?}", f32::from_bits(bits as u32) as f64)
                                    } else {
                                        format!("{:?}", f64::from_bits(bits as u64))
                                    };
                                    let lit = ensure_float_lit(&lit);
                                    self.body.push(format!("{var} = {lit};"));
                                    continue;
                                }
                                return Err(LiftError("bit-level float move".into()));
                            }
                        }
                    }
                    self.lift_inst(inst)?;
                }
            }
        }
        // Assemble the function text.
        let mut out = String::new();
        let plist: Vec<String> =
            params.iter().map(|p| format!("unsigned long r_{p}")).collect();
        let fplist: Vec<String> = (0..uses_xmm_args).map(|n| format!("double f_{n}")).collect();
        let all: Vec<String> = plist.into_iter().chain(fplist).collect();
        out.push_str(&format!(
            "long {}({}) {{\n",
            self.f.name,
            if all.is_empty() { "void".to_string() } else { all.join(", ") }
        ));
        out.push_str("unsigned char stk[4096];\n");
        out.push_str("unsigned long r_rbp = (unsigned long)(stk + 4000);\n");
        out.push_str("unsigned long r_rsp = r_rbp;\n");
        if self.uses_cmp_tmps {
            out.push_str("unsigned long cmp_a = 0;\nunsigned long cmp_b = 0;\n");
            out.push_str("double fcmp_a = 0.0;\ndouble fcmp_b = 0.0;\n");
        }
        for (var, text) in &self.strings {
            out.push_str(&format!("char *{var} = \"{text}\";\n"));
        }
        let mut declared: Vec<String> = params.iter().map(|p| format!("r_{p}")).collect();
        declared.push("r_rbp".into());
        declared.push("r_rsp".into());
        for r in &self.used_regs {
            let v = format!("r_{r}");
            if !declared.contains(&v) {
                out.push_str(&format!("unsigned long {v} = 0;\n"));
                declared.push(v);
            }
        }
        for n in &self.used_xmm {
            if *n >= uses_xmm_args {
                out.push_str(&format!("double f_{n} = 0.0;\n"));
            }
        }
        for stmt in &self.body {
            out.push_str(stmt);
            out.push('\n');
        }
        out.push_str("return r_rax;\n}\n");
        // `r_rax` must exist even for void-ish functions.
        if !out.contains("unsigned long r_rax") && !params.contains(&"rax".to_string()) {
            out = out.replacen(
                "unsigned long r_rsp = r_rbp;\n",
                "unsigned long r_rsp = r_rbp;\nunsigned long r_rax = 0;\n",
                1,
            );
        }
        Ok(out)
    }

    fn lift_inst(&mut self, inst: &Inst) -> Result<(), LiftError> {
        let m = inst.mnemonic.as_str();
        let ops = &inst.operands;
        // Track constants for float-literal recovery.
        let mut new_const: Option<(String, i64)> = None;
        if matches!(m, "movl" | "movabsq" | "movq") {
            if let (Operand::Imm(v), Operand::Reg(r)) = (arg(ops, 0)?, arg(ops, 1)?) {
                if !r.starts_with("xmm") {
                    new_const = Some((canonical_x86(r), *v));
                }
            }
        }
        match m {
            "endbr64" | "nop" | "leave" | "pushq" | "popq" => {}
            "ret" => self.body.push("return r_rax;".to_string()),
            "movb" | "movw" | "movl" | "movq" | "movabsq" => {
                let width = match m {
                    "movb" => 'b',
                    "movw" => 'w',
                    "movl" => 'l',
                    _ => 'q',
                };
                if ops.iter().any(|o| matches!(o, Operand::Reg(r) if r.starts_with("xmm"))) {
                    return Err(LiftError("untracked xmm bit move".into()));
                }
                let v = self.read(arg(ops, 0)?, width)?;
                self.write(arg(ops, 1)?, v, width)?;
                self.arm(arg(ops, 1)?);
            }
            "movslq" => {
                let v = self.read(arg(ops, 0)?, 'l')?;
                self.write(arg(ops, 1)?, format!("(long)(int)({v})"), 'q')?;
                self.arm(arg(ops, 1)?);
            }
            "movsbl" => {
                let v = self.read(arg(ops, 0)?, 'b')?;
                self.write(arg(ops, 1)?, format!("(int)(char)({v})"), 'l')?;
                self.arm(arg(ops, 1)?);
            }
            "movzbl" => {
                let v = self.read(arg(ops, 0)?, 'b')?;
                self.write(arg(ops, 1)?, format!("(unsigned char)({v})"), 'l')?;
                self.arm(arg(ops, 1)?);
            }
            "movswl" => {
                let v = self.read(arg(ops, 0)?, 'w')?;
                self.write(arg(ops, 1)?, format!("(int)(short)({v})"), 'l')?;
                self.arm(arg(ops, 1)?);
            }
            "movzwl" => {
                let v = self.read(arg(ops, 0)?, 'w')?;
                self.write(arg(ops, 1)?, format!("(unsigned short)({v})"), 'l')?;
                self.arm(arg(ops, 1)?);
            }
            "leaq" => {
                let addr = self.address_of(arg(ops, 0)?)?;
                self.write(arg(ops, 1)?, addr, 'q')?;
                self.arm(arg(ops, 1)?);
            }
            "addl" | "addq" | "subl" | "subq" | "imull" | "imulq" | "andl" | "andq" | "orl"
            | "orq" | "xorl" | "xorq" => {
                let width = if m.ends_with('q') { 'q' } else { 'l' };
                let op = match &m[..m.len() - 1] {
                    "add" => "+",
                    "sub" => "-",
                    "imul" => "*",
                    "and" => "&",
                    "or" => "|",
                    _ => "^",
                };
                let a = self.read(arg(ops, 1)?, width)?;
                let b = self.read(arg(ops, 0)?, width)?;
                self.write(arg(ops, 1)?, format!("{a} {op} {b}"), width)?;
                self.arm(arg(ops, 1)?);
            }
            "cltd" | "cqto" => {}
            "idivl" | "divl" | "idivq" | "divq" => {
                let width = if m.ends_with('q') { 'q' } else { 'l' };
                let d = self.read(arg(ops, 0)?, width)?;
                let rax = self.reg64("rax");
                let rdx = self.reg64("rdx");
                let (cast_s, cast_u) = if width == 'l' {
                    ("(int)", "(unsigned int)")
                } else {
                    ("(long)", "(unsigned long)")
                };
                let (q, r) = if m.starts_with('i') {
                    (
                        format!("{cast_s}{rax} / {cast_s}({d})"),
                        format!("{cast_s}{rax} % {cast_s}({d})"),
                    )
                } else {
                    (
                        format!("{cast_u}{rax} / {cast_u}({d})"),
                        format!("{cast_u}{rax} % {cast_u}({d})"),
                    )
                };
                self.body.push(format!("{rdx} = (unsigned int)({r});"));
                self.body.push(format!("{rax} = (unsigned int)({q});"));
            }
            "sall" | "salq" | "sarl" | "sarq" | "shrl" | "shrq" => {
                let width = if m.ends_with('q') { 'q' } else { 'l' };
                let amt = self.read(arg(ops, 0)?, 'b')?;
                let a = self.read(arg(ops, 1)?, width)?;
                let expr = match &m[..3] {
                    "sal" => format!("({a}) << ({amt} & 31)"),
                    "sar" => {
                        if width == 'l' {
                            format!("(int)({a}) >> ({amt} & 31)")
                        } else {
                            format!("(long)({a}) >> ({amt} & 63)")
                        }
                    }
                    _ => format!("({a}) >> ({amt} & 31)"),
                };
                self.write(arg(ops, 1)?, expr, width)?;
            }
            "cmpl" | "cmpq" => {
                let width = if m == "cmpq" { 'q' } else { 'l' };
                let b = self.read(arg(ops, 0)?, width)?;
                let a = self.read(arg(ops, 1)?, width)?;
                // Snapshot operands: the setcc sequence between a compare
                // and its branch clobbers registers.
                self.body.push(format!("cmp_a = {a};"));
                self.body.push(format!("cmp_b = {b};"));
                self.uses_cmp_tmps = true;
                self.pending_cmp = Some(("cmp_a".into(), "cmp_b".into(), width));
            }
            "testl" | "testq" => {
                let width = if m == "testq" { 'q' } else { 'l' };
                let a = self.read(arg(ops, 0)?, width)?;
                self.body.push(format!("cmp_a = {a};"));
                self.body.push("cmp_b = 0;".to_string());
                self.uses_cmp_tmps = true;
                self.pending_cmp = Some(("cmp_a".into(), "cmp_b".into(), width));
            }
            "ucomiss" | "ucomisd" => {
                let a = self.read_float(arg(ops, 1)?, m == "ucomiss")?;
                let b = self.read_float(arg(ops, 0)?, m == "ucomiss")?;
                self.body.push(format!("fcmp_a = {a};"));
                self.body.push(format!("fcmp_b = {b};"));
                self.uses_cmp_tmps = true;
                self.pending_cmp = Some(("fcmp_a".into(), "fcmp_b".into(), 'f'));
            }
            _ if m.starts_with("set") => {
                let cond = self.cond_expr(&m[3..])?;
                self.write(arg(ops, 0)?, format!("({cond}) ? 1 : 0"), 'b')?;
            }
            "jmp" => {
                let Operand::Sym(l) = arg(ops, 0)? else { return Err(LiftError("jmp".into())) };
                self.body.push(format!("goto {};", label_c(l)));
            }
            _ if m.starts_with('j') => {
                let cond = self.cond_expr(&m[1..])?;
                let Operand::Sym(l) = arg(ops, 0)? else { return Err(LiftError("jcc".into())) };
                self.body.push(format!("if ({cond}) goto {};", label_c(l)));
            }
            "call" => {
                let Operand::Sym(callee) = arg(ops, 0)? else {
                    return Err(LiftError("indirect call".into()));
                };
                // Arity heuristic: contiguous prefix of armed arg registers.
                let mut args = Vec::new();
                for (idx, reg) in X86_ARGS.iter().enumerate() {
                    if self.armed_int.contains(&idx) {
                        args.push(self.reg64(reg));
                    } else {
                        break;
                    }
                }
                let mut fi = 0usize;
                while self.armed_f.contains(&fi) {
                    args.push(self.xmm(fi));
                    fi += 1;
                }
                let rax = self.reg64("rax");
                self.body
                    .push(format!("{rax} = (unsigned long){callee}({});", args.join(", ")));
                self.armed_int.clear();
                self.armed_f.clear();
            }
            "movss" | "movsd" => {
                let single = m == "movss";
                match (arg(ops, 0)?, arg(ops, 1)?) {
                    (src, Operand::Reg(d)) if d.starts_with("xmm") => {
                        let v = self.read_float(src, single)?;
                        let n: usize = d[3..].parse().unwrap_or(0);
                        let var = self.xmm(n);
                        self.body.push(format!("{var} = {v};"));
                        if n < 8 && !self.armed_f.contains(&n) {
                            self.armed_f.push(n);
                        }
                    }
                    (Operand::Reg(s), dst) if s.starts_with("xmm") => {
                        let n: usize = s[3..].parse().unwrap_or(0);
                        let var = self.xmm(n);
                        let addr = self.address_of(dst)?;
                        let ty = if single { "float" } else { "double" };
                        let cast = if single { "(float)" } else { "" };
                        self.body.push(format!("*({ty}*)({addr}) = {cast}{var};"));
                    }
                    _ => return Err(LiftError("movss form".into())),
                }
            }
            "addss" | "addsd" | "subss" | "subsd" | "mulss" | "mulsd" | "divss" | "divsd" => {
                let single = m.ends_with("ss");
                let op = match &m[..3] {
                    "add" => "+",
                    "sub" => "-",
                    "mul" => "*",
                    _ => "/",
                };
                let b = self.read_float(arg(ops, 0)?, single)?;
                let Operand::Reg(d) = arg(ops, 1)? else {
                    return Err(LiftError("fp dst".into()));
                };
                let n: usize = d[3..].parse().unwrap_or(0);
                let var = self.xmm(n);
                self.body.push(format!("{var} = {var} {op} {b};"));
            }
            "cvtsi2ss" | "cvtsi2sd" => {
                let v = self.read(arg(ops, 0)?, 'l')?;
                let Operand::Reg(d) = arg(ops, 1)? else {
                    return Err(LiftError("cvt dst".into()));
                };
                let n: usize = d[3..].parse().unwrap_or(0);
                let var = self.xmm(n);
                self.body.push(format!("{var} = (double)(int)({v});"));
            }
            "cvtsi2ssq" | "cvtsi2sdq" => {
                let v = self.read(arg(ops, 0)?, 'q')?;
                let Operand::Reg(d) = arg(ops, 1)? else {
                    return Err(LiftError("cvt dst".into()));
                };
                let n: usize = d[3..].parse().unwrap_or(0);
                let var = self.xmm(n);
                self.body.push(format!("{var} = (double)(long)({v});"));
            }
            "cvttss2si" | "cvttsd2si" | "cvttss2siq" | "cvttsd2siq" => {
                let Operand::Reg(s) = arg(ops, 0)? else {
                    return Err(LiftError("cvt src".into()));
                };
                let n: usize = s[3..].parse().unwrap_or(0);
                let var = self.xmm(n);
                let wide = m.ends_with('q');
                let cast = if wide { "(long)" } else { "(int)" };
                let v = format!("{cast}{var}");
                self.write(arg(ops, 1)?, v, if wide { 'q' } else { 'l' })?;
            }
            "cvtss2sd" | "cvtsd2ss" => {
                // Same C variable (doubles throughout); conversion is free.
                let Operand::Reg(s) = arg(ops, 0)? else { return Err(LiftError("cvt".into())) };
                let Operand::Reg(d) = arg(ops, 1)? else { return Err(LiftError("cvt".into())) };
                if s != d {
                    let ns: usize = s[3..].parse().unwrap_or(0);
                    let nd: usize = d[3..].parse().unwrap_or(0);
                    let vs = self.xmm(ns);
                    let vd = self.xmm(nd);
                    self.body.push(format!("{vd} = {vs};"));
                }
                if m == "cvtsd2ss" {
                    let Operand::Reg(d) = arg(ops, 1)? else { unreachable!() };
                    let nd: usize = d[3..].parse().unwrap_or(0);
                    let vd = self.xmm(nd);
                    self.body.push(format!("{vd} = (double)(float){vd};"));
                }
            }
            "movdqu" | "movups" | "paddd" | "psubd" | "pmulld" | "pshufd" => {
                return Err(LiftError(format!("unsupported vector instruction `{m}`")));
            }
            other => return Err(LiftError(format!("unsupported instruction `{other}`"))),
        }
        if let Some((r, v)) = new_const {
            self.const_in_reg.insert(r, v);
        } else if let Some(Operand::Reg(r)) = inst.operands.last() {
            self.const_in_reg.remove(&canonical_x86(r));
        }
        Ok(())
    }

    fn read_float(&mut self, op: &Operand, single: bool) -> Result<String, LiftError> {
        Ok(match op {
            Operand::Reg(r) if r.starts_with("xmm") => {
                let n: usize = r[3..].parse().unwrap_or(0);
                self.xmm(n)
            }
            Operand::Mem { .. } | Operand::RipSym(_) => {
                let addr = self.address_of(op)?;
                if single {
                    format!("(double)*(float*)({addr})")
                } else {
                    format!("*(double*)({addr})")
                }
            }
            other => return Err(LiftError(format!("float operand {other:?}"))),
        })
    }

    fn arm(&mut self, dst: &Operand) {
        if let Operand::Reg(r) = dst {
            let base = canonical_x86(r);
            if let Some(idx) = X86_ARGS.iter().position(|&a| a == base) {
                if !self.armed_int.contains(&idx) {
                    self.armed_int.push(idx);
                }
            }
        }
    }
}

/// Which integer argument registers are read before written (arity
/// recovery) and how many xmm argument registers are read.
fn x86_params(f: &AsmFunction) -> (Vec<String>, usize) {
    let mut written: Vec<String> = Vec::new();
    let mut params: Vec<usize> = Vec::new();
    let mut fmax = 0usize;
    let mut fwritten: Vec<usize> = Vec::new();
    for inst in f.instructions() {
        // Reads: all operands except the last (AT&T dst-last), plus memory bases.
        let n = inst.operands.len();
        for (i, op) in inst.operands.iter().enumerate() {
            let is_dst = i + 1 == n && writes_dst_x86(&inst.mnemonic);
            match op {
                Operand::Reg(r) if r.starts_with("xmm") => {
                    let x: usize = r[3..].parse().unwrap_or(0);
                    if !is_dst && !fwritten.contains(&x) && x < 8 {
                        fmax = fmax.max(x + 1);
                    }
                    if is_dst {
                        fwritten.push(x);
                    }
                }
                Operand::Reg(r) => {
                    let base = canonical_x86(r);
                    if let Some(idx) = X86_ARGS.iter().position(|&a| a == base) {
                        if !is_dst && !written.contains(&base) && !params.contains(&idx) {
                            params.push(idx);
                        }
                    }
                    if is_dst {
                        written.push(base);
                    }
                }
                Operand::Mem { base, index, .. } => {
                    for r in [base, index].into_iter().flatten() {
                        let b = canonical_x86(r);
                        if let Some(idx) = X86_ARGS.iter().position(|&a| a == b) {
                            if !written.contains(&b) && !params.contains(&idx) {
                                params.push(idx);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    // Parameters form a contiguous ABI prefix.
    let count = (0..X86_ARGS.len()).take_while(|i| params.contains(i)).count();
    ((0..count).map(|i| X86_ARGS[i].to_string()).collect(), fmax)
}

fn writes_dst_x86(m: &str) -> bool {
    !matches!(m, "cmpl" | "cmpq" | "testl" | "testq" | "ucomiss" | "ucomisd" | "pushq")
        && !m.starts_with('j')
}

fn canonical_x86(name: &str) -> String {
    match name {
        "eax" | "ax" | "al" => "rax",
        "ebx" | "bl" => "rbx",
        "ecx" | "cx" | "cl" => "rcx",
        "edx" | "dx" | "dl" => "rdx",
        "esi" | "sil" => "rsi",
        "edi" | "dil" => "rdi",
        "ebp" => "rbp",
        "esp" => "rsp",
        "r8d" => "r8",
        "r9d" => "r9",
        "r10d" => "r10",
        "r11d" => "r11",
        "r12d" => "r12",
        "r13d" => "r13",
        "r14d" => "r14",
        "r15d" => "r15",
        other => other,
    }
    .to_string()
}

fn label_c(label: &str) -> String {
    format!("L{}", label.trim_start_matches(".L").replace('.', "_"))
}

fn escape_c_byte(b: u8) -> String {
    match b {
        b'\n' => "\\n".into(),
        b'\t' => "\\t".into(),
        b'"' => "\\\"".into(),
        b'\\' => "\\\\".into(),
        0x20..=0x7e => (b as char).to_string(),
        other => format!("\\x{other:02x}"),
    }
}

fn ensure_float_lit(s: &str) -> String {
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s.to_string()
    } else {
        format!("{s}.0")
    }
}

fn is_xmm_dst(inst: &Inst) -> bool {
    matches!(inst.operands.last(), Some(Operand::Reg(r)) if r.starts_with("xmm"))
}

// ===================== AArch64 =====================

const ARM_ARGS: usize = 8;

struct ArmLifter<'a> {
    f: &'a AsmFunction,
    rodata: &'a HashMap<String, Vec<u8>>,
    body: Vec<String>,
    used_x: Vec<usize>,
    used_d: Vec<usize>,
    pending_cmp: Option<(String, String, char)>,
    const_in_reg: HashMap<usize, i64>,
    armed_int: Vec<usize>,
    armed_f: Vec<usize>,
    strings: Vec<(String, String)>,
    pending_adrp: HashMap<usize, String>,
    uses_cmp_tmps: bool,
}

impl<'a> ArmLifter<'a> {
    fn new(f: &'a AsmFunction, rodata: &'a HashMap<String, Vec<u8>>) -> Self {
        ArmLifter {
            f,
            rodata,
            body: Vec::new(),
            used_x: Vec::new(),
            used_d: Vec::new(),
            pending_cmp: None,
            const_in_reg: HashMap::new(),
            armed_int: Vec::new(),
            armed_f: Vec::new(),
            strings: Vec::new(),
            pending_adrp: HashMap::new(),
            uses_cmp_tmps: false,
        }
    }

    fn xvar(&mut self, n: usize) -> String {
        if !self.used_x.contains(&n) {
            self.used_x.push(n);
        }
        format!("x_{n}")
    }

    fn dvar(&mut self, n: usize) -> String {
        if !self.used_d.contains(&n) {
            self.used_d.push(n);
        }
        format!("d_{n}")
    }

    fn reg_expr(&mut self, name: &str) -> Result<(String, bool), LiftError> {
        // Returns (expr, wide).
        if name == "sp" {
            return Ok(("x_sp".to_string(), true));
        }
        if name == "wzr" || name == "xzr" {
            return Ok(("0".to_string(), name == "xzr"));
        }
        let (kind, n): (char, usize) = (
            name.chars().next().ok_or_else(|| LiftError("empty reg".into()))?,
            name[1..].parse().map_err(|_| LiftError(format!("register `{name}`")))?,
        );
        Ok(match kind {
            'x' => (self.xvar(n), true),
            'w' => {
                let v = self.xvar(n);
                (format!("(unsigned int){v}"), false)
            }
            's' | 'd' => (self.dvar(n), true),
            _ => return Err(LiftError(format!("register `{name}`"))),
        })
    }

    fn write_reg(&mut self, name: &str, value: String) -> Result<(), LiftError> {
        if name == "sp" {
            self.body.push(format!("x_sp = {value};"));
            return Ok(());
        }
        let kind = name.chars().next().unwrap_or('x');
        let n: usize = name[1..].parse().unwrap_or(0);
        match kind {
            'x' => {
                let v = self.xvar(n);
                self.body.push(format!("{v} = ({value});"));
                if n < ARM_ARGS && !self.armed_int.contains(&n) {
                    self.armed_int.push(n);
                }
            }
            'w' => {
                let v = self.xvar(n);
                self.body.push(format!("{v} = (unsigned int)({value});"));
                if n < ARM_ARGS && !self.armed_int.contains(&n) {
                    self.armed_int.push(n);
                }
            }
            's' | 'd' => {
                let v = self.dvar(n);
                self.body.push(format!("{v} = {value};"));
                if n < ARM_ARGS && !self.armed_f.contains(&n) {
                    self.armed_f.push(n);
                }
            }
            _ => return Err(LiftError(format!("register `{name}`"))),
        }
        Ok(())
    }

    fn mem_addr(&mut self, op: &Operand) -> Result<String, LiftError> {
        let Operand::MemArm { base, off, .. } = op else {
            return Err(LiftError("not a memory operand".into()));
        };
        let (b, _) = self.reg_expr(base)?;
        if *off == 0 {
            Ok(b)
        } else {
            Ok(format!("{b} + {off}"))
        }
    }

    fn lift(mut self) -> Result<String, LiftError> {
        let (nparams, nf) = arm_params(self.f);
        let lines = self.f.lines.clone();
        for line in &lines {
            match line {
                Line::Label(l) => {
                    self.body.push(format!("{}: ;", label_c(l)));
                    self.pending_cmp = None;
                    self.const_in_reg.clear();
                    self.armed_int.clear();
                    self.armed_f.clear();
                }
                Line::Inst(inst) => self.lift_inst(inst)?,
            }
        }
        let mut out = String::new();
        let mut plist: Vec<String> =
            (0..nparams).map(|n| format!("unsigned long x_{n}")).collect();
        plist.extend((0..nf).map(|n| format!("double d_{n}")));
        out.push_str(&format!(
            "long {}({}) {{\n",
            self.f.name,
            if plist.is_empty() { "void".to_string() } else { plist.join(", ") }
        ));
        out.push_str("unsigned char stk[4096];\n");
        out.push_str("unsigned long x_sp = (unsigned long)stk;\nunsigned long x_29 = (unsigned long)stk;\n");
        if self.uses_cmp_tmps {
            out.push_str("unsigned long cmp_a = 0;\nunsigned long cmp_b = 0;\n");
            out.push_str("double fcmp_a = 0.0;\ndouble fcmp_b = 0.0;\n");
        }
        for (var, text) in &self.strings {
            out.push_str(&format!("char *{var} = \"{text}\";\n"));
        }
        for n in &self.used_x {
            if *n >= nparams && *n != 29 && *n != 30 {
                out.push_str(&format!("unsigned long x_{n} = 0;\n"));
            }
        }
        if !self.used_x.contains(&0) && nparams == 0 {
            out.push_str("unsigned long x_0 = 0;\n");
        }
        for n in &self.used_d {
            if *n >= nf {
                out.push_str(&format!("double d_{n} = 0.0;\n"));
            }
        }
        for stmt in &self.body {
            out.push_str(stmt);
            out.push('\n');
        }
        out.push_str("return x_0;\n}\n");
        Ok(out)
    }

    fn lift_inst(&mut self, inst: &Inst) -> Result<(), LiftError> {
        let m = inst.mnemonic.as_str();
        let ops = &inst.operands;
        match m {
            "stp" | "ldp" | "nop" => {} // prologue/epilogue bookkeeping
            "ret" => self.body.push("return x_0;".to_string()),
            "mov" => {
                let Operand::Reg(dst) = arg(ops, 0)? else {
                    return Err(LiftError("mov dst".into()));
                };
                let v = match arg(ops, 1)? {
                    Operand::Imm(v) => format!("{v}"),
                    Operand::Reg(r) => self.reg_expr(r)?.0,
                    other => return Err(LiftError(format!("mov src {other:?}"))),
                };
                self.write_reg(dst, v)?;
                self.const_in_reg.remove(&reg_num(dst));
            }
            "movz" => {
                let Operand::Reg(dst) = arg(ops, 0)? else {
                    return Err(LiftError("movz".into()));
                };
                let &Operand::Imm(v) = arg(ops, 1)? else {
                    return Err(LiftError("movz imm".into()));
                };
                self.write_reg(dst, format!("{v}"))?;
                self.const_in_reg.insert(reg_num(dst), v);
            }
            "movk" => {
                let Operand::Reg(dst) = arg(ops, 0)? else {
                    return Err(LiftError("movk".into()));
                };
                let &Operand::Imm(v) = arg(ops, 1)? else {
                    return Err(LiftError("movk imm".into()));
                };
                let shift = match ops.get(2) {
                    Some(Operand::Lsl(s)) => *s,
                    _ => 0,
                };
                let (cur, _) = self.reg_expr(dst)?;
                self.write_reg(dst, format!("{cur} | ((unsigned long){v} << {shift})"))?;
                let n = reg_num(dst);
                if let Some(c) = self.const_in_reg.get(&n).copied() {
                    self.const_in_reg.insert(n, c | (v << shift));
                }
            }
            "fmov" => {
                // Bit move x→d: recover the literal from tracked constants.
                let Operand::Reg(dst) = arg(ops, 0)? else {
                    return Err(LiftError("fmov".into()));
                };
                let Operand::Reg(src) = arg(ops, 1)? else {
                    return Err(LiftError("fmov".into()));
                };
                let bits = self
                    .const_in_reg
                    .get(&reg_num(src))
                    .copied()
                    .ok_or_else(|| LiftError("bit-level float move".into()))?;
                let lit = if src.starts_with('w') {
                    ensure_float_lit(&format!("{:?}", f32::from_bits(bits as u32) as f64))
                } else {
                    ensure_float_lit(&format!("{:?}", f64::from_bits(bits as u64)))
                };
                self.write_reg(dst, lit)?;
            }
            "ldr" | "ldrb" | "ldrsb" | "ldrh" | "ldrsh" | "ldrsw" => {
                let Operand::Reg(dst) = arg(ops, 0)? else {
                    return Err(LiftError("ldr dst".into()));
                };
                let addr = self.mem_addr(arg(ops, 1)?)?;
                let expr = match (m, dst.chars().next().unwrap_or('x')) {
                    ("ldrb", _) => format!("*(unsigned char*)({addr})"),
                    ("ldrsb", _) => format!("(int)*(char*)({addr})"),
                    ("ldrh", _) => format!("*(unsigned short*)({addr})"),
                    ("ldrsh", _) => format!("(int)*(short*)({addr})"),
                    (_, 'w') => format!("*(unsigned int*)({addr})"),
                    (_, 'x') => format!("*(unsigned long*)({addr})"),
                    (_, 's') => format!("(double)*(float*)({addr})"),
                    (_, 'd') => format!("*(double*)({addr})"),
                    _ => return Err(LiftError("ldr form".into())),
                };
                self.write_reg(dst, expr)?;
                self.const_in_reg.remove(&reg_num(dst));
            }
            "str" | "strb" | "strh" => {
                let Operand::Reg(src) = arg(ops, 0)? else {
                    return Err(LiftError("str src".into()));
                };
                let addr = self.mem_addr(arg(ops, 1)?)?;
                let (v, _) = self.reg_expr(src)?;
                let stmt = match (m, src.chars().next().unwrap_or('x')) {
                    ("strb", _) => format!("*(unsigned char*)({addr}) = (unsigned char)({v});"),
                    ("strh", _) => {
                        format!("*(unsigned short*)({addr}) = (unsigned short)({v});")
                    }
                    (_, 'w') => format!("*(unsigned int*)({addr}) = (unsigned int)({v});"),
                    (_, 'x') => format!("*(unsigned long*)({addr}) = {v};"),
                    (_, 's') => format!("*(float*)({addr}) = (float){v};"),
                    (_, 'd') => format!("*(double*)({addr}) = {v};"),
                    _ => return Err(LiftError("str form".into())),
                };
                self.body.push(stmt);
            }
            "adrp" => {
                let Operand::Reg(dst) = arg(ops, 0)? else {
                    return Err(LiftError("adrp".into()));
                };
                let Operand::Sym(sym) = arg(ops, 1)? else {
                    return Err(LiftError("adrp sym".into()));
                };
                self.pending_adrp.insert(reg_num(dst), sym.clone());
            }
            "add" if ops.len() == 3 && matches!(ops[2], Operand::Lo12(_)) => {
                let Operand::Reg(dst) = arg(ops, 0)? else {
                    return Err(LiftError("add lo12".into()));
                };
                let Operand::Lo12(sym) = arg(ops, 2)? else { unreachable!() };
                let expr = if let Some(bytes) = self.rodata.get(sym) {
                    let text: String = bytes[..bytes.len().saturating_sub(1)]
                        .iter()
                        .map(|&b| escape_c_byte(b))
                        .collect();
                    let var = format!("lc_{}", self.strings.len());
                    if let Some((v, _)) = self.strings.iter().find(|(_, t)| *t == text) {
                        format!("(unsigned long){}", v.clone())
                    } else {
                        self.strings.push((var.clone(), text));
                        format!("(unsigned long){var}")
                    }
                } else {
                    format!("(unsigned long)&{sym}")
                };
                self.write_reg(dst, expr)?;
                self.pending_adrp.remove(&reg_num(dst));
            }
            "add" | "sub" | "mul" | "sdiv" | "udiv" | "and" | "orr" | "eor" | "lsl" | "asr"
            | "lsr" => {
                let Operand::Reg(dst) = arg(ops, 0)? else {
                    return Err(LiftError("alu dst".into()));
                };
                let (a, wide) = match arg(ops, 1)? {
                    Operand::Reg(r) => self.reg_expr(r)?,
                    Operand::Imm(v) => (format!("{v}"), true),
                    other => return Err(LiftError(format!("alu a {other:?}"))),
                };
                let b = match arg(ops, 2)? {
                    Operand::Reg(r) => self.reg_expr(r)?.0,
                    Operand::Imm(v) => format!("{v}"),
                    other => return Err(LiftError(format!("alu b {other:?}"))),
                };
                let signed_cast = if wide && dst.starts_with('x') { "(long)" } else { "(int)" };
                let expr = match m {
                    "add" => format!("{a} + {b}"),
                    "sub" => format!("{a} - {b}"),
                    "mul" => format!("{a} * {b}"),
                    "sdiv" => format!("{signed_cast}({a}) / {signed_cast}({b})"),
                    "udiv" => format!("({a}) / ({b})"),
                    "and" => format!("{a} & {b}"),
                    "orr" => format!("{a} | {b}"),
                    "eor" => format!("{a} ^ {b}"),
                    "lsl" => format!("({a}) << ({b} & 63)"),
                    "asr" => format!("{signed_cast}({a}) >> ({b} & 63)"),
                    _ => format!("({a}) >> ({b} & 63)"),
                };
                self.write_reg(dst, expr)?;
                self.const_in_reg.remove(&reg_num(dst));
            }
            "msub" => {
                // msub d, a, b, c  =>  d = c - a*b
                let Operand::Reg(dst) = arg(ops, 0)? else {
                    return Err(LiftError("msub".into()));
                };
                let a = self.op_expr(arg(ops, 1)?)?;
                let b = self.op_expr(arg(ops, 2)?)?;
                let c = self.op_expr(arg(ops, 3)?)?;
                self.write_reg(dst, format!("{c} - ({a}) * ({b})"))?;
            }
            "sxtw" => {
                let Operand::Reg(dst) = arg(ops, 0)? else {
                    return Err(LiftError("sxtw".into()));
                };
                let v = self.op_expr(arg(ops, 1)?)?;
                self.write_reg(dst, format!("(long)(int)({v})"))?;
            }
            "sxtb" | "uxtb" | "sxth" | "uxth" => {
                let Operand::Reg(dst) = arg(ops, 0)? else {
                    return Err(LiftError("ext".into()));
                };
                let v = self.op_expr(arg(ops, 1)?)?;
                let cast = match m {
                    "sxtb" => "(int)(char)",
                    "uxtb" => "(unsigned char)",
                    "sxth" => "(int)(short)",
                    _ => "(unsigned short)",
                };
                self.write_reg(dst, format!("{cast}({v})"))?;
            }
            "cmp" => {
                let a = self.op_expr(arg(ops, 0)?)?;
                let b = self.op_expr(arg(ops, 1)?)?;
                let wide = matches!(arg(ops, 0)?, Operand::Reg(r) if r.starts_with('x'));
                self.body.push(format!("cmp_a = {a};"));
                self.body.push(format!("cmp_b = {b};"));
                self.uses_cmp_tmps = true;
                self.pending_cmp =
                    Some(("cmp_a".into(), "cmp_b".into(), if wide { 'q' } else { 'l' }));
            }
            "fcmp" => {
                let a = self.op_expr(arg(ops, 0)?)?;
                let b = self.op_expr(arg(ops, 1)?)?;
                self.body.push(format!("fcmp_a = {a};"));
                self.body.push(format!("fcmp_b = {b};"));
                self.uses_cmp_tmps = true;
                self.pending_cmp = Some(("fcmp_a".into(), "fcmp_b".into(), 'f'));
            }
            "cset" => {
                let Operand::Reg(dst) = arg(ops, 0)? else {
                    return Err(LiftError("cset".into()));
                };
                let Operand::Cond(cc) = arg(ops, 1)? else {
                    return Err(LiftError("cset cc".into()));
                };
                let cond = self.cond_expr(cc)?;
                self.write_reg(dst, format!("({cond}) ? 1 : 0"))?;
            }
            "cbnz" => {
                let v = self.op_expr(arg(ops, 0)?)?;
                let Operand::Sym(l) = arg(ops, 1)? else {
                    return Err(LiftError("cbnz".into()));
                };
                self.body.push(format!("if (({v}) != 0) goto {};", label_c(l)));
            }
            "b" => {
                let Operand::Sym(l) = arg(ops, 0)? else { return Err(LiftError("b".into())) };
                self.body.push(format!("goto {};", label_c(l)));
            }
            _ if m.starts_with("b.") => {
                let cond = self.cond_expr(&m[2..])?;
                let Operand::Sym(l) = arg(ops, 0)? else {
                    return Err(LiftError("b.cc".into()));
                };
                self.body.push(format!("if ({cond}) goto {};", label_c(l)));
            }
            "bl" => {
                let Operand::Sym(callee) = arg(ops, 0)? else {
                    return Err(LiftError("bl".into()));
                };
                let mut args = Vec::new();
                let mut i = 0;
                while self.armed_int.contains(&i) {
                    args.push(self.xvar(i));
                    i += 1;
                }
                let mut fi = 0;
                while self.armed_f.contains(&fi) {
                    args.push(self.dvar(fi));
                    fi += 1;
                }
                let x0 = self.xvar(0);
                self.body.push(format!("{x0} = (unsigned long){callee}({});", args.join(", ")));
                self.armed_int.clear();
                self.armed_f.clear();
            }
            "fadd" | "fsub" | "fmul" | "fdiv" => {
                let Operand::Reg(dst) = arg(ops, 0)? else {
                    return Err(LiftError("fp dst".into()));
                };
                let a = self.op_expr(arg(ops, 1)?)?;
                let b = self.op_expr(arg(ops, 2)?)?;
                let op = match m {
                    "fadd" => "+",
                    "fsub" => "-",
                    "fmul" => "*",
                    _ => "/",
                };
                self.write_reg(dst, format!("{a} {op} {b}"))?;
            }
            "scvtf" => {
                let Operand::Reg(dst) = arg(ops, 0)? else {
                    return Err(LiftError("scvtf".into()));
                };
                let Operand::Reg(src) = arg(ops, 1)? else {
                    return Err(LiftError("scvtf".into()));
                };
                let (v, _) = self.reg_expr(src)?;
                let cast = if src.starts_with('w') { "(int)" } else { "(long)" };
                self.write_reg(dst, format!("(double){cast}({v})"))?;
            }
            "fcvtzs" => {
                let Operand::Reg(dst) = arg(ops, 0)? else {
                    return Err(LiftError("fcvtzs".into()));
                };
                let Operand::Reg(src) = arg(ops, 1)? else {
                    return Err(LiftError("fcvtzs".into()));
                };
                let (v, _) = self.reg_expr(src)?;
                let cast = if dst.starts_with('w') { "(int)" } else { "(long)" };
                self.write_reg(dst, format!("{cast}({v})"))?;
            }
            "fcvt" => {
                let Operand::Reg(dst) = arg(ops, 0)? else {
                    return Err(LiftError("fcvt".into()));
                };
                let Operand::Reg(src) = arg(ops, 1)? else {
                    return Err(LiftError("fcvt".into()));
                };
                let (v, _) = self.reg_expr(src)?;
                let expr =
                    if dst.starts_with('s') { format!("(double)(float)({v})") } else { v };
                self.write_reg(dst, expr)?;
            }
            other => return Err(LiftError(format!("unsupported instruction `{other}`"))),
        }
        Ok(())
    }

    fn op_expr(&mut self, op: &Operand) -> Result<String, LiftError> {
        match op {
            Operand::Reg(r) => Ok(self.reg_expr(r)?.0),
            Operand::Imm(v) => Ok(format!("{v}")),
            other => Err(LiftError(format!("operand {other:?}"))),
        }
    }

    fn cond_expr(&self, cc: &str) -> Result<String, LiftError> {
        let Some((a, b, width)) = &self.pending_cmp else {
            return Err(LiftError(format!("condition `{cc}` without compare")));
        };
        let (sa, sb) = match width {
            'l' => (format!("(int)({a})"), format!("(int)({b})")),
            'f' => (a.clone(), b.clone()),
            _ => (format!("(long)({a})"), format!("(long)({b})")),
        };
        Ok(match cc {
            "eq" => format!("{sa} == {sb}"),
            "ne" => format!("{sa} != {sb}"),
            "lt" | "mi" => format!("{sa} < {sb}"),
            "le" | "ls" => format!("{sa} <= {sb}"),
            "gt" | "hi" => format!("{sa} > {sb}"),
            "ge" | "hs" => format!("{sa} >= {sb}"),
            "lo" => format!("({a}) < ({b})"),
            other => return Err(LiftError(format!("condition `{other}`"))),
        })
    }
}

fn reg_num(name: &str) -> usize {
    name[1..].parse().unwrap_or(99)
}

/// Integer and float argument registers read before written (ARM arity
/// recovery, same heuristic as [`x86_params`]).
fn arm_params(f: &AsmFunction) -> (usize, usize) {
    let mut written_x: Vec<usize> = Vec::new();
    let mut written_d: Vec<usize> = Vec::new();
    let mut read_x: Vec<usize> = Vec::new();
    let mut read_d: Vec<usize> = Vec::new();
    for inst in f.instructions() {
        let dst_first = matches!(
            inst.mnemonic.as_str(),
            "mov"
                | "movz"
                | "movk"
                | "fmov"
                | "ldr"
                | "ldrb"
                | "ldrsb"
                | "ldrh"
                | "ldrsh"
                | "add"
                | "sub"
                | "mul"
                | "sdiv"
                | "udiv"
                | "and"
                | "orr"
                | "eor"
                | "lsl"
                | "asr"
                | "lsr"
                | "msub"
                | "sxtw"
                | "sxtb"
                | "uxtb"
                | "sxth"
                | "uxth"
                | "cset"
                | "scvtf"
                | "fcvtzs"
                | "fcvt"
                | "fadd"
                | "fsub"
                | "fmul"
                | "fdiv"
                | "adrp"
        );
        for (i, op) in inst.operands.iter().enumerate() {
            let is_dst = i == 0 && dst_first;
            let regs: Vec<&str> = match op {
                Operand::Reg(r) => vec![r.as_str()],
                Operand::MemArm { base, .. } => vec![base.as_str()],
                _ => vec![],
            };
            for r in regs {
                let c = r.chars().next().unwrap_or(' ');
                let n: usize = r.get(1..).and_then(|s| s.parse().ok()).unwrap_or(99);
                if n >= ARM_ARGS {
                    continue;
                }
                match c {
                    'x' | 'w' => {
                        if is_dst && matches!(op, Operand::Reg(_)) {
                            written_x.push(n);
                        } else if !written_x.contains(&n) && !read_x.contains(&n) {
                            read_x.push(n);
                        }
                    }
                    's' | 'd' => {
                        if is_dst && matches!(op, Operand::Reg(_)) {
                            written_d.push(n);
                        } else if !written_d.contains(&n) && !read_d.contains(&n) {
                            read_d.push(n);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    let nint = (0..ARM_ARGS).take_while(|i| read_x.contains(i)).count();
    let nf = (0..ARM_ARGS).take_while(|i| read_d.contains(i)).count();
    (nint, nf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slade_asm::parse_asm;
    use slade_compiler::{compile_function, CompileOpts, OptLevel};
    use slade_minic::{parse_program, Interpreter, Value};

    fn lift_src(
        src: &str,
        name: &str,
        isa: slade_compiler::Isa,
        opt: OptLevel,
    ) -> Result<String, LiftError> {
        let p = parse_program(src).unwrap();
        let asm = compile_function(&p, name, CompileOpts::new(isa, opt)).unwrap();
        let aisa = match isa {
            slade_compiler::Isa::X86_64 => Isa::X86_64,
            slade_compiler::Isa::Arm64 => Isa::Arm64,
        };
        let file = parse_asm(&asm, aisa);
        lift(file.function(name).unwrap(), aisa, &file.rodata)
    }

    #[test]
    fn lifted_x86_o0_add_is_behaviorally_correct() {
        let src = "int add3(int a, int b) { return a + b * 3; }";
        let c = lift_src(src, "add3", slade_compiler::Isa::X86_64, OptLevel::O0).unwrap();
        let p = parse_program(&c).unwrap_or_else(|e| panic!("{e}\n{c}"));
        let mut i = Interpreter::new(&p).unwrap_or_else(|e| panic!("{e}\n{c}"));
        let out = i.call("add3", &[Value::long(5), Value::long(4)]).unwrap();
        assert_eq!(out.ret.unwrap().as_i64() as i32, 17, "\n{c}");
    }

    #[test]
    fn lifted_x86_loop_matches_ground_truth() {
        let src =
            "int total(int n) { int s = 0; for (int i = 1; i <= n; i++) s += i; return s; }";
        let c = lift_src(src, "total", slade_compiler::Isa::X86_64, OptLevel::O0).unwrap();
        let p = parse_program(&c).unwrap_or_else(|e| panic!("{e}\n{c}"));
        let mut i = Interpreter::new(&p).unwrap();
        for n in [0i64, 1, 5, 10] {
            let out = i.call("total", &[Value::long(n)]).unwrap().ret.unwrap();
            assert_eq!(out.as_i64() as i32, (n * (n + 1) / 2) as i32, "n={n}\n{c}");
        }
    }

    #[test]
    fn lifted_pointer_function_writes_through() {
        let src = "void bump(int *a, int v, int n) { for (int i = 0; i < n; i++) a[i] += v; }";
        let c = lift_src(src, "bump", slade_compiler::Isa::X86_64, OptLevel::O0).unwrap();
        let p = parse_program(&c).unwrap_or_else(|e| panic!("{e}\n{c}"));
        let mut interp = Interpreter::new(&p).unwrap();
        let mut bytes = Vec::new();
        for v in [1i32, 2, 3] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let buf = interp.alloc_buffer(&bytes);
        interp.call("bump", &[Value::Ptr(buf), Value::long(10), Value::long(3)]).unwrap();
        let out = interp.read_buffer(buf, 12).unwrap();
        let vals: Vec<i32> =
            out.chunks(4).map(|c| i32::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(vals, vec![11, 12, 13], "\n{c}");
    }

    #[test]
    fn vectorized_o3_fails_to_lift_like_ghidra() {
        let src = "void addv(int *list, int val, int n) { int i; for (i = 0; i < n; ++i) list[i] += val; }";
        let err = lift_src(src, "addv", slade_compiler::Isa::X86_64, OptLevel::O3).unwrap_err();
        assert!(err.0.contains("vector"), "{err}");
    }

    #[test]
    fn lifted_arm_o0_add_is_behaviorally_correct() {
        let src = "int add3(int a, int b) { return a + b * 3; }";
        let c = lift_src(src, "add3", slade_compiler::Isa::Arm64, OptLevel::O0).unwrap();
        let p = parse_program(&c).unwrap_or_else(|e| panic!("{e}\n{c}"));
        let mut i = Interpreter::new(&p).unwrap();
        let out = i.call("add3", &[Value::long(5), Value::long(4)]).unwrap();
        assert_eq!(out.ret.unwrap().as_i64() as i32, 17, "\n{c}");
    }

    #[test]
    fn lifted_code_is_verbose_and_unreadable() {
        // The whole point: correct but far from the original source.
        let src = "int add(int a, int b) { return a + b; }";
        let c = lift_src(src, "add", slade_compiler::Isa::X86_64, OptLevel::O0).unwrap();
        assert!(c.contains("unsigned long"), "{c}");
        assert!(c.len() > src.len() * 4, "lifted code suspiciously compact:\n{c}");
    }

    #[test]
    fn extern_calls_guess_arity_from_armed_registers() {
        let src =
            "int helper(int a, int b) { return a + b; } int f(int x) { return helper(x, 3); }";
        let c = lift_src(src, "f", slade_compiler::Isa::X86_64, OptLevel::O0).unwrap();
        assert!(c.contains("helper(r_rdi, r_rsi)") || c.contains("helper(r_rdi,"), "{c}");
    }
}
