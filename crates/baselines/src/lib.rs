//! Baseline decompilers: the Ghidra-like rule-based lifter, a ChatGPT
//! stand-in, and the BTC-like neural baseline.
//!
//! See `DESIGN.md` for each substitution argument. All three expose the
//! same surface: assembly text in, C hypothesis (or failure) out.

#![warn(missing_docs)]

pub mod lifter;

pub use lifter::{lift, LiftError};

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use slade_asm::{parse_asm, Isa};
use slade_dataset::DatasetItem;
use slade_nn::Seq2Seq;
use slade_tokenizer::{special, WordTokenizer};

/// Runs the Ghidra-like decompiler on assembly text.
///
/// # Errors
///
/// Returns a [`LiftError`] when the assembly contains constructs the lifter
/// does not model (vector instructions, unknown mnemonics) — Ghidra's
/// optimized-code failure mode.
pub fn ghidra_decompile(
    asm_text: &str,
    isa: Isa,
    func_name: &str,
) -> Result<String, LiftError> {
    let file = parse_asm(asm_text, isa);
    let func = file
        .function(func_name)
        .ok_or_else(|| LiftError(format!("function `{func_name}` not found")))?;
    lift(func, isa, &file.rodata)
}

/// The large-language-model stand-in ("ChatGPT" in the paper's comparison).
///
/// Simulated as retrieval over a large pre-training corpus: the query
/// assembly is matched by opcode-bigram cosine similarity against every
/// corpus function's assembly, and the best match's *C source* is returned
/// with lightly paraphrased identifiers. The result is fluent and usually
/// compilable but frequently semantically wrong — the behaviour the paper
/// measures (readable, compiles, incorrect; Table I).
#[derive(Debug)]
pub struct ChatGptSim {
    corpus: Vec<(Vec<(String, String)>, String)>, // (bigram profile, C source)
}

impl ChatGptSim {
    /// Builds the simulator from a corpus of `(assembly, c_source)` pairs —
    /// "what the web crawl contained".
    pub fn new(corpus: &[(String, String)]) -> Self {
        let corpus = corpus.iter().map(|(asm, c)| (bigram_profile(asm), c.clone())).collect();
        ChatGptSim { corpus }
    }

    /// Builds the simulator from dataset items compiled for one target.
    pub fn from_items(
        items: &[DatasetItem],
        asm_for: impl Fn(&DatasetItem) -> Option<String>,
    ) -> Self {
        let corpus: Vec<(String, String)> = items
            .iter()
            .filter_map(|it| asm_for(it).map(|asm| (asm, it.func_src.clone())))
            .collect();
        Self::new(&corpus)
    }

    /// "Decompiles" by nearest-neighbour retrieval plus identifier
    /// paraphrase. Always produces *something* (LLMs rarely abstain); the
    /// function is renamed to `wanted_name` the way a prompt would instruct.
    pub fn decompile(&self, asm_text: &str, wanted_name: &str, seed: u64) -> String {
        let query = bigram_profile(asm_text);
        let mut best = (0.0f64, None);
        for (profile, source) in &self.corpus {
            let sim = cosine(&query, profile);
            if sim > best.0 {
                best = (sim, Some(source));
            }
        }
        let Some(source) = best.1 else {
            return format!("int {wanted_name}(int a) {{ return a; }}");
        };
        paraphrase(source, wanted_name, seed)
    }
}

fn bigram_profile(asm: &str) -> Vec<(String, String)> {
    let opcodes: Vec<String> = asm
        .lines()
        .filter_map(|l| {
            let t = l.trim();
            if t.is_empty() || t.starts_with('.') || t.ends_with(':') {
                None
            } else {
                Some(t.split_whitespace().next().unwrap_or("").to_string())
            }
        })
        .collect();
    opcodes.windows(2).map(|w| (w[0].clone(), w[1].clone())).collect()
}

fn cosine(a: &[(String, String)], b: &[(String, String)]) -> f64 {
    use std::collections::HashMap;
    let mut ca: HashMap<&(String, String), f64> = HashMap::new();
    for g in a {
        *ca.entry(g).or_insert(0.0) += 1.0;
    }
    let mut cb: HashMap<&(String, String), f64> = HashMap::new();
    for g in b {
        *cb.entry(g).or_insert(0.0) += 1.0;
    }
    let dot: f64 = ca.iter().map(|(g, x)| x * cb.get(g).copied().unwrap_or(0.0)).sum();
    let na: f64 = ca.values().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = cb.values().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

const PARAPHRASE_NAMES: [&str; 8] =
    ["value", "input", "result", "count", "index", "buffer", "temp", "size"];

/// Rewrites the retrieved source: renames the function and paraphrases
/// parameter-like identifiers, as an LLM does when it "explains" code.
fn paraphrase(source: &str, wanted_name: &str, seed: u64) -> String {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let Ok(program) = slade_minic::parse_program(source) else {
        return source.to_string();
    };
    let mut out = source.to_string();
    if let Some(f) = program.functions().next() {
        out = out.replace(&f.name, wanted_name);
        for (pname, _) in &f.params {
            if pname.len() > 1 && rng.gen_bool(0.6) {
                let new = PARAPHRASE_NAMES.choose(&mut rng).unwrap();
                // Whole-word replacement.
                out = replace_ident(&out, pname, new);
            }
        }
    }
    out
}

fn replace_ident(text: &str, from: &str, to: &str) -> String {
    let mut out = String::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if text[i..].starts_with(from) {
            let before_ok =
                i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
            let after = i + from.len();
            let after_ok = after >= bytes.len()
                || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
            if before_ok && after_ok {
                out.push_str(to);
                i += from.len();
                continue;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

use rand::Rng;

/// The BTC-like neural baseline: same seq2seq architecture as SLaDe but a
/// word-level tokenizer (OOV-prone), greedy decoding, no type inference,
/// x86 `-O0` only, and no signature prediction — the paper prepends the
/// ground-truth signature to its output (§Appendix B.4); so do we.
#[derive(Debug)]
pub struct BtcBaseline {
    /// The trained model.
    pub model: Seq2Seq,
    /// Word-level source tokenizer.
    pub tokenizer: WordTokenizer,
}

impl BtcBaseline {
    /// Decompiles assembly, prepending `signature` (ground truth, as the
    /// paper does for BTC). Returns the hypothesis C text.
    pub fn decompile(&self, asm_text: &str, signature: &str) -> String {
        let src = self.tokenizer.encode(asm_text);
        let out = self.model.greedy(&src, special::BOS, special::EOS, 96);
        let body = self.tokenizer.decode(&out);
        // BTC emits body fragments without headers; splice after the
        // ground-truth signature.
        if body.trim_start().starts_with('{') {
            format!("{signature} {body}")
        } else {
            format!("{signature} {{ {body} }}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chatgpt_sim_retrieves_similar_code() {
        let corpus = vec![
            (
                "f:\n\tmovl %edi, %eax\n\taddl %esi, %eax\n\tret\n".to_string(),
                "int add(int a, int b) { return a + b; }".to_string(),
            ),
            (
                "g:\n\tmovl %edi, %eax\n\timull %esi, %eax\n\tret\n".to_string(),
                "int mul(int a, int b) { return a * b; }".to_string(),
            ),
        ];
        let sim = ChatGptSim::new(&corpus);
        let out = sim.decompile("h:\n\tmovl %edi, %eax\n\taddl %esi, %eax\n\tret\n", "h", 1);
        assert!(out.contains("+"), "should retrieve the add-like source: {out}");
        assert!(out.contains("int h("), "renamed: {out}");
    }

    #[test]
    fn chatgpt_sim_always_answers() {
        let sim = ChatGptSim::new(&[]);
        let out = sim.decompile("whatever", "mystery", 2);
        assert!(out.contains("mystery"));
    }

    #[test]
    fn paraphrase_renames_whole_words_only() {
        let out = replace_ident("int val; int valid; val = valid;", "val", "x");
        assert_eq!(out, "int x; int valid; x = valid;");
    }

    #[test]
    fn ghidra_decompile_end_to_end() {
        use slade_compiler::{compile_function, CompileOpts, OptLevel};
        let p = slade_minic::parse_program("int twice(int a) { return a + a; }").unwrap();
        let asm = compile_function(
            &p,
            "twice",
            CompileOpts::new(slade_compiler::Isa::X86_64, OptLevel::O0),
        )
        .unwrap();
        let c = ghidra_decompile(&asm, Isa::X86_64, "twice").unwrap();
        let lifted = slade_minic::parse_program(&c).unwrap();
        let mut i = slade_minic::Interpreter::new(&lifted).unwrap();
        let out = i.call("twice", &[slade_minic::Value::long(21)]).unwrap().ret.unwrap();
        assert_eq!(out.as_i64() as i32, 42);
    }
}
