//! Dataset generation: the ExeBench / AnghaBench / Synth-benchmark stand-in.
//!
//! The paper trains on ~4M real-world C functions paired with GCC assembly
//! (ExeBench) and evaluates on a held-out ExeBench slice plus the 112-item
//! Synth suite, whose categories (Fig. 11) are `makespeare`, `simpl_int`,
//! `simpl_array`, `L2`, `SKETCHADAPT`, `string`, `mathfu`, `BLAS`, `DSP`.
//!
//! We cannot scrape GitHub here, so this crate *generates* compilable,
//! executable MiniC functions from seeded template families spanning those
//! same categories, each with: a calling context (typedefs, structs,
//! globals, external helper definitions — the parts a decompiler does *not*
//! see), concrete IO inputs, and token-level hash deduplication between
//! train and test splits (§V-A). Function length is biased short, matching
//! the ExeBench length distribution in Fig. 9.

#![warn(missing_docs)]

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use slade_minic::parse_program;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// A concrete argument for one IO example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArgSpec {
    /// Scalar integer.
    Int(i64),
    /// Scalar double.
    F64(f64),
    /// `int*` buffer (little-endian i32 elements).
    IntBuf(Vec<i32>),
    /// `double*` buffer.
    F64Buf(Vec<f64>),
    /// `char*` buffer (NUL-terminated by the harness).
    CharBuf(Vec<u8>),
}

/// Benchmark category, following Fig. 11's breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Simple integer arithmetic, trivial control flow.
    SimplInt,
    /// Integer array loops.
    SimplArray,
    /// Functional-style (recursive) integer programs.
    L2,
    /// String-manipulation programs (hardest in the paper).
    Sketchadapt,
    /// C-string scans.
    StringOps,
    /// Scalar floating-point math.
    Mathfu,
    /// BLAS-like vector kernels.
    Blas,
    /// Fixed-point DSP kernels.
    Dsp,
    /// Miscellaneous multi-statement integer functions.
    Makespeare,
    /// ExeBench-only: user-defined struct types in the context.
    Structs,
    /// ExeBench-only: calls to external helpers defined in the context.
    ExternCalls,
    /// ExeBench-only: references to globals defined in the context.
    Globals,
}

/// All Synth categories, in the paper's Fig. 11 order.
pub const SYNTH_CATEGORIES: [Category; 9] = [
    Category::Makespeare,
    Category::SimplInt,
    Category::SimplArray,
    Category::L2,
    Category::Sketchadapt,
    Category::StringOps,
    Category::Mathfu,
    Category::Blas,
    Category::Dsp,
];

/// One dataset item: a function with its context and IO inputs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetItem {
    /// Function name.
    pub name: String,
    /// The ground-truth function source alone.
    pub func_src: String,
    /// Context source (typedefs/structs/globals/extern helpers), *without*
    /// the function itself. Concatenating `context_src + func_src` yields a
    /// complete executable program.
    pub context_src: String,
    /// Category of the generating template.
    pub category: Category,
    /// Concrete inputs for IO-equivalence testing.
    pub inputs: Vec<Vec<ArgSpec>>,
}

impl DatasetItem {
    /// The full program: context plus ground-truth function.
    pub fn full_src(&self) -> String {
        format!("{}\n{}", self.context_src, self.func_src)
    }

    /// Token-level hash used for train/test deduplication (§V-A).
    pub fn token_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for t in slade_tokenizer_pretokens(&self.func_src) {
            t.hash(&mut h);
        }
        h.finish()
    }
}

// Local pretokenizer mirror to avoid a dependency cycle with the tokenizer
// crate (the dedup only needs stable word splitting).
fn slade_tokenizer_pretokens(text: &str) -> Vec<String> {
    text.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Reproduction-scale dataset sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Training pairs to generate.
    pub train: usize,
    /// ExeBench-like evaluation items.
    pub exebench_eval: usize,
    /// Synth items per category (9 categories).
    pub synth_per_category: usize,
}

impl DatasetProfile {
    /// Unit-test sized.
    pub fn tiny() -> Self {
        DatasetProfile { train: 40, exebench_eval: 10, synth_per_category: 2 }
    }

    /// Bench-harness sized (minutes on one core).
    pub fn default_profile() -> Self {
        DatasetProfile { train: 900, exebench_eval: 120, synth_per_category: 12 }
    }
}

/// Generates the training set: deduplicated items across all categories.
pub fn generate_train(profile: DatasetProfile, seed: u64) -> Vec<DatasetItem> {
    generate_items(profile.train, seed, &exebench_mix(), None)
}

/// Generates the held-out ExeBench-like evaluation set, guaranteed disjoint
/// (by token hash) from `train`.
pub fn generate_exebench_eval(
    profile: DatasetProfile,
    seed: u64,
    train: &[DatasetItem],
) -> Vec<DatasetItem> {
    let taken: HashSet<u64> = train.iter().map(DatasetItem::token_hash).collect();
    generate_items(profile.exebench_eval, seed ^ 0xeeee, &exebench_mix(), Some(&taken))
}

/// Generates the Synth suite: `synth_per_category` items per category.
pub fn generate_synth(
    profile: DatasetProfile,
    seed: u64,
    train: &[DatasetItem],
) -> Vec<DatasetItem> {
    let taken: HashSet<u64> = train.iter().map(DatasetItem::token_hash).collect();
    let mut out = Vec::new();
    for (i, cat) in SYNTH_CATEGORIES.iter().enumerate() {
        out.extend(generate_items(
            profile.synth_per_category,
            seed ^ 0x5511 ^ (i as u64) << 8,
            &[*cat],
            Some(&taken),
        ));
    }
    out
}

fn exebench_mix() -> Vec<Category> {
    use Category::*;
    vec![
        SimplInt,
        SimplInt,
        SimplArray,
        SimplArray,
        Makespeare,
        Makespeare,
        StringOps,
        Dsp,
        Mathfu,
        Blas,
        L2,
        Structs,
        Structs,
        ExternCalls,
        ExternCalls,
        Globals,
    ]
}

fn generate_items(
    count: usize,
    seed: u64,
    categories: &[Category],
    exclude: Option<&HashSet<u64>>,
) -> Vec<DatasetItem> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut attempts = 0usize;
    while out.len() < count && attempts < count * 50 {
        attempts += 1;
        let cat = *categories.choose(&mut rng).expect("nonempty categories");
        let item = generate_one(cat, &mut rng);
        // Items must actually compile and type-check.
        if parse_program(&item.full_src())
            .and_then(|p| slade_minic::Sema::check(&p).map(|_| p))
            .is_err()
        {
            continue;
        }
        let h = item.token_hash();
        if seen.contains(&h) || exclude.is_some_and(|e| e.contains(&h)) {
            continue;
        }
        seen.insert(h);
        out.push(item);
    }
    out
}

const VERBS: [&str; 10] =
    ["compute", "scale", "count", "apply", "update", "blend", "fold", "shift", "probe", "mix"];
const NOUNS: [&str; 10] =
    ["sum", "vals", "items", "score", "delta", "total", "weight", "mask", "acc", "span"];
const IVARS: [&str; 4] = ["i", "j", "k", "idx"];
const PTRS: [&str; 4] = ["arr", "buf", "data", "list"];

fn fresh_name(rng: &mut ChaCha8Rng) -> String {
    let v = VERBS.choose(rng).unwrap();
    let n = NOUNS.choose(rng).unwrap();
    if rng.gen_bool(0.3) {
        format!("{v}_{n}{}", rng.gen_range(2..9))
    } else {
        format!("{v}_{n}")
    }
}

fn small_k(rng: &mut ChaCha8Rng) -> i64 {
    *[1i64, 2, 3, 4, 5, 7, 8, 10, 16, 100].choose(rng).unwrap()
}

fn int_inputs(rng: &mut ChaCha8Rng, n: usize) -> Vec<Vec<ArgSpec>> {
    (0..4).map(|_| (0..n).map(|_| ArgSpec::Int(rng.gen_range(-20..40))).collect()).collect()
}

fn generate_one(cat: Category, rng: &mut ChaCha8Rng) -> DatasetItem {
    match cat {
        Category::SimplInt => gen_simpl_int(rng),
        Category::SimplArray => gen_simpl_array(rng),
        Category::L2 => gen_l2(rng),
        Category::Sketchadapt => gen_sketchadapt(rng),
        Category::StringOps => gen_string(rng),
        Category::Mathfu => gen_mathfu(rng),
        Category::Blas => gen_blas(rng),
        Category::Dsp => gen_dsp(rng),
        Category::Makespeare => gen_makespeare(rng),
        Category::Structs => gen_structs(rng),
        Category::ExternCalls => gen_extern_calls(rng),
        Category::Globals => gen_globals(rng),
    }
}

fn gen_simpl_int(rng: &mut ChaCha8Rng) -> DatasetItem {
    let name = fresh_name(rng);
    let (a, b) = ("a", "b");
    let k1 = small_k(rng);
    let k2 = small_k(rng);
    let op1 = *["+", "-", "*"].choose(rng).unwrap();
    let op2 = *["+", "-", "*", "&", "|", "^"].choose(rng).unwrap();
    let body = match rng.gen_range(0..4) {
        0 => format!("return {a} {op1} {b} {op2} {k1};"),
        1 => format!("if ({a} > {b}) return {a} {op1} {k1}; return {b} {op2} {k2};"),
        2 => format!("int t = {a} {op1} {k1}; return t {op2} {b};"),
        _ => format!("return ({a} < {b}) ? {a} {op1} {k1} : {b} {op2} {k2};"),
    };
    let func_src = format!("int {name}(int {a}, int {b}) {{ {body} }}");
    DatasetItem {
        name,
        func_src,
        context_src: String::new(),
        category: Category::SimplInt,
        inputs: int_inputs(rng, 2),
    }
}

fn gen_simpl_array(rng: &mut ChaCha8Rng) -> DatasetItem {
    let name = fresh_name(rng);
    let p = PTRS.choose(rng).unwrap();
    let i = IVARS.choose(rng).unwrap();
    let k = small_k(rng);
    let variant = rng.gen_range(0..5);
    let func_src = match variant {
        0 => format!(
            "void {name}(int *{p}, int val, int n) {{ int {i}; for ({i} = 0; {i} < n; ++{i}) {{ {p}[{i}] += val; }} }}"
        ),
        1 => format!(
            "int {name}(int *{p}, int n) {{ int s = 0; for (int {i} = 0; {i} < n; {i}++) s += {p}[{i}]; return s; }}"
        ),
        2 => format!(
            "int {name}(int *{p}, int n) {{ int m = {p}[0]; for (int {i} = 1; {i} < n; {i}++) {{ if ({p}[{i}] > m) m = {p}[{i}]; }} return m; }}"
        ),
        3 => format!(
            "int {name}(int *{p}, int n, int val) {{ int c = 0; for (int {i} = 0; {i} < n; {i}++) {{ if ({p}[{i}] == val) c++; }} return c; }}"
        ),
        _ => format!(
            "void {name}(int *{p}, int n) {{ for (int {i} = 0; {i} < n; {i}++) {p}[{i}] = {p}[{i}] * {k}; }}"
        ),
    };
    let buf: Vec<i32> = (0..8).map(|_| rng.gen_range(-9..30)).collect();
    let inputs = match variant {
        0 => vec![
            vec![ArgSpec::IntBuf(buf.clone()), ArgSpec::Int(small_k(rng)), ArgSpec::Int(8)],
            vec![ArgSpec::IntBuf(buf.clone()), ArgSpec::Int(-3), ArgSpec::Int(5)],
            vec![ArgSpec::IntBuf(buf.clone()), ArgSpec::Int(1), ArgSpec::Int(1)],
        ],
        3 => vec![
            vec![ArgSpec::IntBuf(buf.clone()), ArgSpec::Int(8), ArgSpec::Int(buf[2] as i64)],
            vec![ArgSpec::IntBuf(buf.clone()), ArgSpec::Int(4), ArgSpec::Int(0)],
        ],
        _ => vec![
            vec![ArgSpec::IntBuf(buf.clone()), ArgSpec::Int(8)],
            vec![ArgSpec::IntBuf(buf.clone()), ArgSpec::Int(3)],
            vec![ArgSpec::IntBuf(buf), ArgSpec::Int(1)],
        ],
    };
    DatasetItem {
        name,
        func_src,
        context_src: String::new(),
        category: Category::SimplArray,
        inputs,
    }
}

fn gen_l2(rng: &mut ChaCha8Rng) -> DatasetItem {
    let name = fresh_name(rng);
    let variant = rng.gen_range(0..3);
    let func_src = match variant {
        0 => format!(
            "int {name}(int n) {{ if (n < 2) return n; return {name}(n - 1) + {name}(n - 2); }}"
        ),
        1 => format!("int {name}(int n) {{ int r = 1; while (n > 1) {{ r *= n; n -= 1; }} return r; }}"),
        _ => format!(
            "int {name}(int a, int b) {{ while (b != 0) {{ int t = a % b; a = b; b = t; }} return a; }}"
        ),
    };
    let inputs = if variant == 2 {
        vec![
            vec![ArgSpec::Int(36), ArgSpec::Int(24)],
            vec![ArgSpec::Int(7), ArgSpec::Int(5)],
            vec![ArgSpec::Int(10), ArgSpec::Int(0)],
        ]
    } else {
        vec![vec![ArgSpec::Int(1)], vec![ArgSpec::Int(6)], vec![ArgSpec::Int(9)]]
    };
    DatasetItem { name, func_src, context_src: String::new(), category: Category::L2, inputs }
}

fn gen_sketchadapt(rng: &mut ChaCha8Rng) -> DatasetItem {
    let name = fresh_name(rng);
    let variant = rng.gen_range(0..3);
    let func_src = match variant {
        0 => format!(
            "void {name}(char *s) {{ int i = 0; while (s[i]) {{ if (s[i] >= 'a' && s[i] <= 'z') s[i] = s[i] - 32; i++; }} }}"
        ),
        1 => format!(
            "int {name}(char *s, char c) {{ int n = 0; for (int i = 0; s[i]; i++) {{ if (s[i] == c) n++; }} return n; }}"
        ),
        _ => format!(
            "void {name}(char *dst, char *src) {{ int i = 0; while (src[i]) {{ dst[i] = src[i]; i++; }} dst[i] = 0; }}"
        ),
    };
    let word = *["hello world", "decompile me", "slade test"].choose(rng).unwrap();
    let inputs = match variant {
        1 => vec![
            vec![ArgSpec::CharBuf(word.as_bytes().to_vec()), ArgSpec::Int('l' as i64)],
            vec![ArgSpec::CharBuf(word.as_bytes().to_vec()), ArgSpec::Int('e' as i64)],
        ],
        2 => vec![vec![
            ArgSpec::CharBuf(vec![0u8; 24]),
            ArgSpec::CharBuf(word.as_bytes().to_vec()),
        ]],
        _ => vec![vec![ArgSpec::CharBuf(word.as_bytes().to_vec())]],
    };
    DatasetItem {
        name,
        func_src,
        context_src: String::new(),
        category: Category::Sketchadapt,
        inputs,
    }
}

fn gen_string(rng: &mut ChaCha8Rng) -> DatasetItem {
    let name = fresh_name(rng);
    let variant = rng.gen_range(0..2);
    let func_src = match variant {
        0 => format!(
            "int {name}(char *s) {{ int n = 0; while (s[n]) n++; return n; }}"
        ),
        _ => format!(
            "int {name}(char *s) {{ int v = 0; for (int i = 0; s[i]; i++) v = v * 10 + (s[i] - '0'); return v; }}"
        ),
    };
    let text = if variant == 0 { "some text" } else { "4711" };
    DatasetItem {
        name,
        func_src,
        context_src: String::new(),
        category: Category::StringOps,
        inputs: vec![vec![ArgSpec::CharBuf(text.as_bytes().to_vec())]],
    }
}

fn gen_mathfu(rng: &mut ChaCha8Rng) -> DatasetItem {
    let name = fresh_name(rng);
    let k = small_k(rng) as f64;
    let variant = rng.gen_range(0..3);
    let func_src = match variant {
        0 => format!("double {name}(double x) {{ return x * x + {k}.0; }}"),
        1 => format!("double {name}(double x, double y) {{ return sqrt(x * x + y * y); }}"),
        _ => format!("double {name}(double x) {{ if (x < 0.0) x = -x; return x * {k}.5; }}"),
    };
    let inputs = if variant == 1 {
        vec![
            vec![ArgSpec::F64(3.0), ArgSpec::F64(4.0)],
            vec![ArgSpec::F64(1.5), ArgSpec::F64(2.0)],
        ]
    } else {
        vec![vec![ArgSpec::F64(2.0)], vec![ArgSpec::F64(-1.25)]]
    };
    DatasetItem {
        name,
        func_src,
        context_src: String::new(),
        category: Category::Mathfu,
        inputs,
    }
}

fn gen_blas(rng: &mut ChaCha8Rng) -> DatasetItem {
    let name = fresh_name(rng);
    let variant = rng.gen_range(0..2);
    let func_src = match variant {
        0 => format!(
            "void {name}(int n, double a, double *x, double *y) {{ for (int i = 0; i < n; i++) y[i] = a * x[i] + y[i]; }}"
        ),
        _ => format!(
            "double {name}(int n, double *x, double *y) {{ double s = 0.0; for (int i = 0; i < n; i++) s += x[i] * y[i]; return s; }}"
        ),
    };
    let x: Vec<f64> = (0..6).map(|_| rng.gen_range(-3.0..5.0_f64).round()).collect();
    let y: Vec<f64> = (0..6).map(|_| rng.gen_range(-3.0..5.0_f64).round()).collect();
    let inputs = if variant == 0 {
        vec![vec![ArgSpec::Int(6), ArgSpec::F64(2.0), ArgSpec::F64Buf(x), ArgSpec::F64Buf(y)]]
    } else {
        vec![vec![ArgSpec::Int(6), ArgSpec::F64Buf(x), ArgSpec::F64Buf(y)]]
    };
    DatasetItem { name, func_src, context_src: String::new(), category: Category::Blas, inputs }
}

fn gen_dsp(rng: &mut ChaCha8Rng) -> DatasetItem {
    let name = fresh_name(rng);
    let shift = rng.gen_range(1..5);
    let k = small_k(rng);
    let variant = rng.gen_range(0..2);
    let func_src = match variant {
        0 => format!(
            "void {name}(int *buf, int n) {{ for (int i = 0; i < n; i++) buf[i] = (buf[i] * {k}) >> {shift}; }}"
        ),
        _ => format!(
            "int {name}(int *buf, int n) {{ int acc = 0; for (int i = 1; i < n; i++) acc += (buf[i] - buf[i - 1]) >> {shift}; return acc; }}"
        ),
    };
    let buf: Vec<i32> = (0..8).map(|_| rng.gen_range(0..64)).collect();
    DatasetItem {
        name,
        func_src,
        context_src: String::new(),
        category: Category::Dsp,
        inputs: vec![
            vec![ArgSpec::IntBuf(buf.clone()), ArgSpec::Int(8)],
            vec![ArgSpec::IntBuf(buf), ArgSpec::Int(3)],
        ],
    }
}

fn gen_makespeare(rng: &mut ChaCha8Rng) -> DatasetItem {
    let name = fresh_name(rng);
    let k1 = small_k(rng);
    let k2 = small_k(rng);
    let variant = rng.gen_range(0..4);
    let func_src = match variant {
        0 => format!(
            "int {name}(int x, int y) {{ int s = 0; while (x > 0) {{ s += y; x--; }} return s + {k1}; }}"
        ),
        1 => format!(
            "int {name}(int n) {{ int a = 0; int b = 1; for (int i = 0; i < n; i++) {{ int t = a + b; a = b; b = t; }} return a; }}"
        ),
        2 => format!(
            "int {name}(int x) {{ int r = 0; while (x != 0) {{ r = r * 10 + x % 10; x /= 10; }} return r + {k2}; }}"
        ),
        _ => format!(
            "int {name}(int x) {{ switch (x & 3) {{ case 0: return x + {k1}; case 1: return x - {k2}; case 2: return x * 2; default: return -x; }} }}"
        ),
    };
    let inputs = if variant == 0 {
        vec![vec![ArgSpec::Int(4), ArgSpec::Int(6)], vec![ArgSpec::Int(0), ArgSpec::Int(9)]]
    } else {
        vec![vec![ArgSpec::Int(12)], vec![ArgSpec::Int(305)], vec![ArgSpec::Int(0)]]
    };
    DatasetItem {
        name,
        func_src,
        context_src: String::new(),
        category: Category::Makespeare,
        inputs,
    }
}

const STRUCT_NAMES: [&str; 4] = ["Point", "Pair", "Node", "Span"];
const FIELD_SETS: [(&str, &str); 4] = [("x", "y"), ("lo", "hi"), ("a", "b"), ("left", "right")];

fn gen_structs(rng: &mut ChaCha8Rng) -> DatasetItem {
    let name = fresh_name(rng);
    let sname = STRUCT_NAMES.choose(rng).unwrap();
    let (f1, f2) = FIELD_SETS.choose(rng).unwrap();
    let context_src =
        format!("typedef struct {sname} {sname};\nstruct {sname} {{ int {f1}; int {f2}; }};\n");
    let variant = rng.gen_range(0..3);
    let func_src = match variant {
        0 => format!("int {name}({sname} *p) {{ return p->{f1} + p->{f2}; }}"),
        1 => format!(
            "void {name}({sname} *p, int d) {{ p->{f1} += d; p->{f2} -= d; }}"
        ),
        _ => format!(
            "int {name}({sname} *p, int n) {{ int s = 0; for (int i = 0; i < n; i++) s += p[i].{f1} * p[i].{f2}; return s; }}"
        ),
    };
    // Struct buffers are passed as raw int pairs.
    let pairs: Vec<i32> = (0..8).map(|_| rng.gen_range(-5..20)).collect();
    let inputs = match variant {
        1 => vec![vec![ArgSpec::IntBuf(pairs.clone()), ArgSpec::Int(3)]],
        2 => vec![vec![ArgSpec::IntBuf(pairs.clone()), ArgSpec::Int(3)]],
        _ => vec![vec![ArgSpec::IntBuf(pairs)]],
    };
    DatasetItem { name, func_src, context_src, category: Category::Structs, inputs }
}

const HELPERS: [(&str, &str); 3] = [
    ("clamp_small", "int clamp_small(int v) { if (v > 100) return 100; if (v < -100) return -100; return v; }"),
    ("wrap_add", "int wrap_add(int a, int b) { return (a + b) % 1000; }"),
    ("sign_of", "int sign_of(int v) { if (v > 0) return 1; if (v < 0) return -1; return 0; }"),
];

fn gen_extern_calls(rng: &mut ChaCha8Rng) -> DatasetItem {
    let name = fresh_name(rng);
    let (hname, hdef) = HELPERS.choose(rng).unwrap();
    let k = small_k(rng);
    let two_arg = *hname == "wrap_add";
    let func_src = if two_arg {
        format!("int {name}(int x, int y) {{ return {hname}(x * {k}, y) + 1; }}")
    } else {
        format!("int {name}(int x) {{ return {hname}(x * {k}) + {hname}(x - {k}); }}")
    };
    let inputs = if two_arg { int_inputs(rng, 2) } else { int_inputs(rng, 1) };
    DatasetItem {
        name,
        func_src,
        context_src: format!("{hdef}\n"),
        category: Category::ExternCalls,
        inputs,
    }
}

const GLOBALS: [&str; 3] = ["table", "weights", "lut"];

fn gen_globals(rng: &mut ChaCha8Rng) -> DatasetItem {
    let name = fresh_name(rng);
    let g = GLOBALS.choose(rng).unwrap();
    let vals: Vec<i64> = (0..4).map(|_| small_k(rng)).collect();
    let context_src =
        format!("int {g}[4] = {{{}, {}, {}, {}}};\n", vals[0], vals[1], vals[2], vals[3]);
    let variant = rng.gen_range(0..2);
    let func_src = match variant {
        0 => format!("int {name}(int i) {{ return {g}[i & 3] * 2; }}"),
        _ => format!(
            "int {name}(int x) {{ int s = 0; for (int i = 0; i < 4; i++) s += {g}[i] * x; return s; }}"
        ),
    };
    DatasetItem {
        name,
        func_src,
        context_src,
        category: Category::Globals,
        inputs: int_inputs(rng, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slade_compiler::{compile_function, CompileOpts, Isa, OptLevel};

    #[test]
    fn all_categories_generate_compilable_items() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for cat in [
            Category::SimplInt,
            Category::SimplArray,
            Category::L2,
            Category::Sketchadapt,
            Category::StringOps,
            Category::Mathfu,
            Category::Blas,
            Category::Dsp,
            Category::Makespeare,
            Category::Structs,
            Category::ExternCalls,
            Category::Globals,
        ] {
            for _ in 0..5 {
                let item = generate_one(cat, &mut rng);
                let p = parse_program(&item.full_src())
                    .unwrap_or_else(|e| panic!("{cat:?}: {e}\n{}", item.full_src()));
                slade_minic::Sema::check(&p)
                    .unwrap_or_else(|e| panic!("{cat:?}: {e}\n{}", item.full_src()));
            }
        }
    }

    #[test]
    fn items_compile_on_both_isas_and_levels() {
        let items = generate_train(DatasetProfile::tiny(), 7);
        assert!(!items.is_empty());
        for item in items.iter().take(12) {
            let p = parse_program(&item.full_src()).unwrap();
            for isa in [Isa::X86_64, Isa::Arm64] {
                for opt in [OptLevel::O0, OptLevel::O3] {
                    compile_function(&p, &item.name, CompileOpts::new(isa, opt))
                        .unwrap_or_else(|e| panic!("{e}\n{}", item.full_src()));
                }
            }
        }
    }

    #[test]
    fn train_and_eval_are_disjoint_by_token_hash() {
        let profile = DatasetProfile::tiny();
        let train = generate_train(profile, 11);
        let eval = generate_exebench_eval(profile, 11, &train);
        let train_hashes: HashSet<u64> = train.iter().map(DatasetItem::token_hash).collect();
        for item in &eval {
            assert!(!train_hashes.contains(&item.token_hash()), "leaked: {}", item.func_src);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_train(DatasetProfile::tiny(), 5);
        let b = generate_train(DatasetProfile::tiny(), 5);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].func_src, b[0].func_src);
    }

    #[test]
    fn synth_covers_all_categories() {
        let profile = DatasetProfile::tiny();
        let synth = generate_synth(profile, 3, &[]);
        let cats: HashSet<Category> = synth.iter().map(|i| i.category).collect();
        assert!(cats.len() >= 8, "only {cats:?}");
    }

    #[test]
    fn items_execute_on_io_inputs() {
        use slade_minic::{Interpreter, Value};
        let items = generate_train(DatasetProfile::tiny(), 23);
        let mut executed = 0;
        for item in items.iter().take(10) {
            let p = parse_program(&item.full_src()).unwrap();
            let mut interp = Interpreter::new(&p).unwrap();
            for input in &item.inputs {
                let args: Vec<Value> = input
                    .iter()
                    .map(|a| match a {
                        ArgSpec::Int(v) => Value::int(*v),
                        ArgSpec::F64(v) => Value::F64(*v),
                        ArgSpec::IntBuf(vs) => {
                            let bytes: Vec<u8> =
                                vs.iter().flat_map(|v| v.to_le_bytes()).collect();
                            Value::Ptr(interp.alloc_buffer(&bytes))
                        }
                        ArgSpec::F64Buf(vs) => {
                            let bytes: Vec<u8> =
                                vs.iter().flat_map(|v| v.to_le_bytes()).collect();
                            Value::Ptr(interp.alloc_buffer(&bytes))
                        }
                        ArgSpec::CharBuf(bs) => {
                            let mut bytes = bs.clone();
                            bytes.push(0);
                            Value::Ptr(interp.alloc_buffer(&bytes))
                        }
                    })
                    .collect();
                interp
                    .call(&item.name, &args)
                    .unwrap_or_else(|e| panic!("{e}\n{}", item.full_src()));
                executed += 1;
            }
        }
        assert!(executed > 10);
    }
}
