//! Satellite: histogram quantile error is bounded by one bucket width
//! (relative `1/SUB_BUCKETS`) across a million log-spaced samples.

use slade_obs::{Histogram, SUB_BUCKETS};

#[test]
fn quantile_error_within_one_bucket_width() {
    const N: usize = 1_000_000;
    // Log-spaced samples from 1µs to ~100s, deterministic.
    let lo: f64 = 1.0;
    let hi: f64 = 1e8;
    let mut samples: Vec<u64> = (0..N)
        .map(|i| {
            let t = i as f64 / (N - 1) as f64;
            (lo * (hi / lo).powf(t)).round() as u64
        })
        .collect();

    let h = Histogram::new();
    for &s in &samples {
        h.record(s);
    }
    assert_eq!(h.count(), N as u64);

    samples.sort_unstable();
    let rel_width = 1.0 / SUB_BUCKETS as f64;
    for q in [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1.0] {
        let rank = ((N as f64) * q).ceil().max(1.0) as usize - 1;
        let truth = samples[rank] as f64;
        let est = h.quantile(q) as f64;
        // The estimate is a bucket upper bound: never below the true order
        // statistic, and at most one bucket width above it.
        assert!(est >= truth, "q={q}: estimate {est} below true order statistic {truth}");
        let err = (est - truth) / truth.max(1.0);
        assert!(
            err <= rel_width + 1e-9,
            "q={q}: relative error {err:.4} exceeds bucket width {rel_width}"
        );
    }
}
