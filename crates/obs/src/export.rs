//! Exposition formats: Prometheus text protocol and a validation parser.
//!
//! [`PromText`] assembles one exposition document; each metric family is
//! declared exactly once (`# HELP` / `# TYPE` then all its series), which
//! [`validate_exposition`] — used by the tests and the CI scrape smoke —
//! enforces along with line-protocol well-formedness. Durations are
//! exported in **seconds** (Prometheus convention) even though the crate
//! records microseconds internally.

use crate::hist::HistSnapshot;
use std::collections::HashMap;

/// Builder for one Prometheus text-exposition document.
///
/// # Panics
///
/// Declaring the same family twice panics — duplicate `HELP`/`TYPE`
/// blocks are a protocol violation the builder refuses to emit.
#[derive(Debug, Default)]
pub struct PromText {
    buf: String,
    seen: Vec<&'static str>,
}

impl PromText {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    fn declare(&mut self, name: &'static str, help: &str, kind: &str) {
        assert!(!self.seen.contains(&name), "duplicate metric family `{name}`");
        self.seen.push(name);
        self.buf.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    }

    /// One counter series.
    pub fn counter(&mut self, name: &'static str, help: &str, value: u64) {
        self.declare(name, help, "counter");
        self.buf.push_str(&format!("{name} {value}\n"));
    }

    /// One gauge series.
    pub fn gauge(&mut self, name: &'static str, help: &str, value: f64) {
        self.declare(name, help, "gauge");
        self.buf.push_str(&format!("{name} {value}\n"));
    }

    /// A counter family with one series per `(label_value, value)` pair.
    pub fn counter_series(
        &mut self,
        name: &'static str,
        help: &str,
        label: &str,
        series: &[(String, u64)],
    ) {
        self.declare(name, help, "counter");
        for (lv, v) in series {
            self.buf.push_str(&format!("{name}{{{label}=\"{lv}\"}} {v}\n"));
        }
    }

    /// A gauge family with one series per `(label_value, value)` pair.
    pub fn gauge_series(
        &mut self,
        name: &'static str,
        help: &str,
        label: &str,
        series: &[(String, f64)],
    ) {
        self.declare(name, help, "gauge");
        for (lv, v) in series {
            self.buf.push_str(&format!("{name}{{{label}=\"{lv}\"}} {v}\n"));
        }
    }

    /// An info-style gauge carrying identity labels with value 1.
    pub fn info(&mut self, name: &'static str, help: &str, labels: &[(&str, &str)]) {
        self.declare(name, help, "gauge");
        let pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        self.buf.push_str(&format!("{name}{{{}}} 1\n", pairs.join(",")));
    }

    /// A histogram family from a snapshot of **microsecond** samples,
    /// exported in seconds: coarsened cumulative `_bucket{le=...}` series
    /// plus `_sum` and `_count`.
    pub fn histogram_us(&mut self, name: &'static str, help: &str, snap: &HistSnapshot) {
        self.declare(name, help, "histogram");
        for (upper_us, cum) in snap.cumulative_octaves() {
            let le = (upper_us + 1) as f64 / 1e6;
            self.buf.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        self.buf.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
        self.buf.push_str(&format!("{name}_sum {}\n", snap.sum as f64 / 1e6));
        self.buf.push_str(&format!("{name}_count {}\n", snap.count));
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Summary of a parsed exposition, for assertions in tests/CI.
#[derive(Debug, Default)]
pub struct ExpositionStats {
    /// Declared metric families.
    pub families: usize,
    /// Sample lines (non-comment).
    pub samples: usize,
    /// Parsed `name → value` for unlabeled samples.
    pub values: HashMap<String, f64>,
}

/// Parses a Prometheus text exposition, enforcing well-formedness: every
/// sample belongs to a declared family, `HELP`/`TYPE` appear exactly once
/// per family, sample lines parse as `name[{labels}] value`, and
/// histogram bucket counts are monotonically non-decreasing in `le`.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_exposition(text: &str) -> Result<ExpositionStats, String> {
    let mut stats = ExpositionStats::default();
    let mut declared: HashMap<String, String> = HashMap::new(); // family -> type
    let mut helped: Vec<String> = Vec::new();
    let mut last_bucket: HashMap<String, (f64, u64)> = HashMap::new();
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().ok_or(format!("{ln}: empty HELP"))?;
            if helped.contains(&name.to_string()) {
                return Err(format!("{ln}: duplicate HELP for `{name}`"));
            }
            helped.push(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or(format!("{ln}: empty TYPE"))?;
            let kind = it.next().ok_or(format!("{ln}: TYPE without kind"))?;
            if declared.contains_key(name) {
                return Err(format!("{ln}: duplicate TYPE for `{name}`"));
            }
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                return Err(format!("{ln}: unknown type `{kind}`"));
            }
            declared.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        // Sample line: name[{labels}] value
        let (series, value) =
            line.rsplit_once(' ').ok_or(format!("{ln}: no value on `{line}`"))?;
        let value: f64 = value.parse().map_err(|_| format!("{ln}: bad value `{value}`"))?;
        let (name, labels) = match series.split_once('{') {
            Some((n, l)) => {
                let l = l.strip_suffix('}').ok_or(format!("{ln}: unterminated labels"))?;
                (n, Some(l))
            }
            None => (series, None),
        };
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("{ln}: bad metric name `{name}`"));
        }
        // A histogram family declares `x` but emits `x_bucket`/`x_sum`/`x_count`.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                name.strip_suffix(suf)
                    .filter(|base| declared.get(*base).map(String::as_str) == Some("histogram"))
            })
            .unwrap_or(name);
        if !declared.contains_key(family) {
            return Err(format!("{ln}: sample for undeclared family `{name}`"));
        }
        if let Some(l) = labels {
            for pair in l.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').ok_or(format!("{ln}: bad label `{pair}`"))?;
                if !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                    return Err(format!("{ln}: unquoted label value `{k}={v}`"));
                }
                if name.ends_with("_bucket") && k == "le" && v != "\"+Inf\"" {
                    let le: f64 = v
                        .trim_matches('"')
                        .parse()
                        .map_err(|_| format!("{ln}: bad le `{v}`"))?;
                    let entry =
                        last_bucket.entry(name.to_string()).or_insert((f64::NEG_INFINITY, 0));
                    if le <= entry.0 {
                        return Err(format!("{ln}: le not increasing on `{name}`"));
                    }
                    if (value as u64) < entry.1 {
                        return Err(format!("{ln}: bucket count decreased on `{name}`"));
                    }
                    *entry = (le, value as u64);
                }
            }
        } else {
            stats.values.insert(name.to_string(), value);
        }
        stats.samples += 1;
    }
    for name in declared.keys() {
        if !helped.contains(name) {
            return Err(format!("TYPE without HELP for `{name}`"));
        }
    }
    stats.families = declared.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn builder_output_validates() {
        let h = Histogram::new();
        for v in [100u64, 2_000, 2_000, 50_000] {
            h.record(v);
        }
        let mut p = PromText::new();
        p.counter("slade_requests_total", "Requests accepted.", 42);
        p.gauge("slade_queue_depth", "Waiting requests.", 3.0);
        p.gauge_series(
            "slade_shard_lanes",
            "Live lanes per shard.",
            "shard",
            &[("0".into(), 4.0), ("1".into(), 2.0)],
        );
        p.info("slade_build_info", "Serving configuration.", &[("isa", "avx2")]);
        p.histogram_us("slade_latency_seconds", "End-to-end latency.", &h.snapshot());
        let text = p.finish();
        let stats = validate_exposition(&text).expect("well-formed");
        assert_eq!(stats.families, 5);
        assert_eq!(stats.values["slade_requests_total"], 42.0);
        assert!(text.contains("slade_latency_seconds_count 4"));
    }

    #[test]
    #[should_panic(expected = "duplicate metric family")]
    fn duplicate_family_panics() {
        let mut p = PromText::new();
        p.counter("x_total", "x", 1);
        p.counter("x_total", "x", 2);
    }

    #[test]
    fn validator_rejects_malformed() {
        assert!(validate_exposition("no_decl 1\n").is_err());
        assert!(
            validate_exposition("# HELP a a\n# TYPE a gauge\n# TYPE a gauge\na 1\n").is_err()
        );
        assert!(validate_exposition("# HELP a a\n# TYPE a gauge\na not_a_number\n").is_err());
        let dup_help = "# HELP a a\n# HELP a a\n# TYPE a gauge\na 1\n";
        assert!(validate_exposition(dup_help).is_err());
    }
}
