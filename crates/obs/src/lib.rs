//! Observability substrate for the SLaDe workspace.
//!
//! Three pieces, all wait-free on the hot path:
//!
//! * [`Histogram`] — log-bucketed (HDR-style) atomic histograms with
//!   bounded-error quantiles, replacing the old `Mutex<Reservoir>`
//!   percentiles in `slade_serve`.
//! * [`TraceRing`] — a lock-free bounded ring of finished [`SpanRecord`]s
//!   giving each request a span tree (queue → admit → decode steps → BTC).
//! * [`export`] — Prometheus text exposition plus a JSON dump.
//!
//! A process-wide registry ([`obs()`]) holds one histogram per pipeline
//! [`StageHist`], one counter per [`KernelCtr`], and the trace ring, so
//! `nn`/`core`/`eval` can record without threading handles through every
//! API. Tracing is on by default (measured overhead is <1% decode tok/s;
//! see `BENCH_serve.json`) and can be disabled at runtime with
//! [`set_tracing`] — when off, stage timers and span recording reduce to
//! one relaxed load and a branch.
//!
//! Knobs (read once at first use):
//!
//! * `SLADE_TRACE_RING` — trace ring capacity in spans (default 8192).
//! * `SLADE_SLOW_MS` — slow-request log threshold in ms (default 1000;
//!   `0` disables the log).

#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod trace;

pub use hist::{HistSnapshot, Histogram, BUCKETS, SUB_BUCKETS};
pub use trace::{render_tree, SpanRecord, Stage, TraceRing};

use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Pipeline stages with a dedicated timing histogram (µs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageHist {
    /// Encoder forward pass over a batch (per batch).
    Encode = 0,
    /// One batched decode step across all live lanes.
    DecodeStep = 1,
    /// Beam scoring per step: top-k + survivor selection.
    Score = 2,
    /// Engine admission: begin_decode + cross-memory registration.
    Admit = 3,
    /// Tokenization of normalized assembly (per batch).
    Tokenize = 4,
    /// Type-inference header synthesis (per example).
    TypeInf = 5,
    /// Candidate repair pass (per example).
    Repair = 6,
    /// IO judging / BTC verification (per example).
    Judge = 7,
}

const STAGE_HISTS: usize = 8;

impl StageHist {
    /// All stages, in index order.
    pub const ALL: [StageHist; STAGE_HISTS] = [
        StageHist::Encode,
        StageHist::DecodeStep,
        StageHist::Score,
        StageHist::Admit,
        StageHist::Tokenize,
        StageHist::TypeInf,
        StageHist::Repair,
        StageHist::Judge,
    ];

    /// Exporter label (also the Prometheus metric stem).
    pub fn name(self) -> &'static str {
        match self {
            StageHist::Encode => "encode",
            StageHist::DecodeStep => "decode_step",
            StageHist::Score => "score",
            StageHist::Admit => "admit",
            StageHist::Tokenize => "tokenize",
            StageHist::TypeInf => "typeinf",
            StageHist::Repair => "repair",
            StageHist::Judge => "judge",
        }
    }
}

/// Kernel-level event counters (cheap relaxed adds; no timing — timing a
/// single projection or top-k call would cost more than the call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelCtr {
    /// Projection (matmul head/ffn) invocations.
    ProjCalls = 0,
    /// Rows produced by projections.
    ProjRows = 1,
    /// Attention context computations.
    AttendCalls = 2,
    /// log-softmax top-k invocations.
    TopkCalls = 3,
    /// Sequence rows pushed through the encoder.
    EncodeRows = 4,
    /// Lane-tokens advanced by decode steps (lanes × steps).
    DecodeLaneTokens = 5,
    /// Requests that exceeded the `SLADE_SLOW_MS` threshold.
    SlowRequests = 6,
}

const KERNEL_CTRS: usize = 7;

impl KernelCtr {
    /// All counters, in index order.
    pub const ALL: [KernelCtr; KERNEL_CTRS] = [
        KernelCtr::ProjCalls,
        KernelCtr::ProjRows,
        KernelCtr::AttendCalls,
        KernelCtr::TopkCalls,
        KernelCtr::EncodeRows,
        KernelCtr::DecodeLaneTokens,
        KernelCtr::SlowRequests,
    ];

    /// Exporter label.
    pub fn name(self) -> &'static str {
        match self {
            KernelCtr::ProjCalls => "proj_calls",
            KernelCtr::ProjRows => "proj_rows",
            KernelCtr::AttendCalls => "attend_calls",
            KernelCtr::TopkCalls => "topk_calls",
            KernelCtr::EncodeRows => "encode_rows",
            KernelCtr::DecodeLaneTokens => "decode_lane_tokens",
            KernelCtr::SlowRequests => "slow_requests",
        }
    }
}

/// Process-wide observability state; obtain via [`obs()`].
pub struct Obs {
    stages: [Histogram; STAGE_HISTS],
    counters: [AtomicU64; KERNEL_CTRS],
    ring: TraceRing,
    enabled: AtomicBool,
    epoch: Instant,
    next_trace: AtomicU64,
    slow_us: u64,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled.load(Ordering::Relaxed))
            .field("ring_capacity", &self.ring.capacity())
            .finish()
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

static OBS: OnceLock<Obs> = OnceLock::new();

/// The process-wide registry. First call reads `SLADE_TRACE_RING` and
/// `SLADE_SLOW_MS` and fixes the configuration for the process lifetime.
pub fn obs() -> &'static Obs {
    OBS.get_or_init(|| {
        #[allow(clippy::declare_interior_mutable_const)]
        const H: Histogram = Histogram::new();
        #[allow(clippy::declare_interior_mutable_const)]
        const Z: AtomicU64 = AtomicU64::new(0);
        Obs {
            stages: [H; STAGE_HISTS],
            counters: [Z; KERNEL_CTRS],
            ring: TraceRing::new(env_u64("SLADE_TRACE_RING", 8192) as usize),
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            next_trace: AtomicU64::new(1),
            slow_us: env_u64("SLADE_SLOW_MS", 1000).saturating_mul(1000),
        }
    })
}

impl Obs {
    /// Whether tracing/stage-timing is currently enabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The timing histogram for a stage.
    pub fn stage(&self, s: StageHist) -> &Histogram {
        &self.stages[s as usize]
    }

    /// Records a stage duration in µs (no-op when tracing is disabled).
    #[inline]
    pub fn record_stage(&self, s: StageHist, dur_us: u64) {
        if self.enabled() {
            self.stages[s as usize].record(dur_us);
        }
    }

    /// Bumps a kernel counter (no-op when tracing is disabled).
    #[inline]
    pub fn count(&self, c: KernelCtr, n: u64) {
        if self.enabled() {
            self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value of a kernel counter.
    pub fn counter(&self, c: KernelCtr) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// The span ring.
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// Records a finished span (no-op when tracing is disabled).
    #[inline]
    pub fn record_span(&self, rec: SpanRecord) {
        if self.enabled() {
            self.ring.record(rec);
        }
    }

    /// Microseconds since the process observability epoch.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Allocates a fresh trace id (process-unique, never 0).
    pub fn next_trace_id(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// Slow-request threshold in µs; 0 when the slow log is disabled.
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_us
    }

    /// JSON-serializable dump of every stage histogram and counter.
    pub fn stage_snapshot(&self) -> StageBreakdown {
        StageBreakdown {
            stages: StageHist::ALL
                .iter()
                .map(|&s| {
                    let snap = self.stage(s).snapshot();
                    StageSummary {
                        stage: s.name(),
                        count: snap.count,
                        total_us: snap.sum,
                        mean_us: snap.mean(),
                        p50_us: snap.quantile(0.50),
                        p95_us: snap.quantile(0.95),
                        p99_us: snap.quantile(0.99),
                    }
                })
                .collect(),
            counters: KernelCtr::ALL.iter().map(|&c| (c.name(), self.counter(c))).collect(),
        }
    }
}

/// Enables or disables all tracing/stage-timing process-wide.
pub fn set_tracing(on: bool) {
    obs().enabled.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently enabled.
pub fn tracing_enabled() -> bool {
    obs().enabled()
}

/// Per-stage aggregate for JSON export (the BENCH_serve.json
/// stage-breakdown section and `slade-cli stats --json`).
#[derive(Debug, Clone, Serialize)]
pub struct StageSummary {
    /// Stage label.
    pub stage: &'static str,
    /// Samples recorded.
    pub count: u64,
    /// Total time in µs.
    pub total_us: u64,
    /// Mean duration in µs.
    pub mean_us: f64,
    /// Median in µs.
    pub p50_us: u64,
    /// 95th percentile in µs.
    pub p95_us: u64,
    /// 99th percentile in µs.
    pub p99_us: u64,
}

/// Full stage/counter dump.
#[derive(Debug, Clone, Serialize)]
pub struct StageBreakdown {
    /// One summary per [`StageHist`].
    pub stages: Vec<StageSummary>,
    /// `(name, value)` per [`KernelCtr`].
    pub counters: Vec<(&'static str, u64)>,
}

/// RAII stage timer: records elapsed µs into the stage histogram on drop.
/// Costs one relaxed load + branch when tracing is off.
#[derive(Debug)]
pub struct StageTimer {
    stage: StageHist,
    start: Option<Instant>,
}

impl StageTimer {
    /// Starts timing `stage` (inert when tracing is disabled).
    #[inline]
    pub fn start(stage: StageHist) -> Self {
        let start = if obs().enabled() { Some(Instant::now()) } else { None };
        StageTimer { stage, start }
    }

    /// Elapsed µs so far (0 when inert).
    pub fn elapsed_us(&self) -> u64 {
        self.start.map(|s| s.elapsed().as_micros() as u64).unwrap_or(0)
    }
}

impl Drop for StageTimer {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            obs().stage(self.stage).record(start.elapsed().as_micros() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_records_and_snapshots() {
        let o = obs();
        o.record_stage(StageHist::Encode, 150);
        o.count(KernelCtr::ProjCalls, 3);
        let snap = o.stage_snapshot();
        let enc = snap.stages.iter().find(|s| s.stage == "encode").unwrap();
        assert!(enc.count >= 1);
        let proj = snap.counters.iter().find(|(n, _)| *n == "proj_calls").unwrap();
        assert!(proj.1 >= 3);
        // The dump serializes.
        let js = serde_json::to_string(&snap).unwrap();
        assert!(js.contains("decode_step"));
    }

    #[test]
    fn stage_timer_records_on_drop() {
        let before = obs().stage(StageHist::Judge).count();
        {
            let _t = StageTimer::start(StageHist::Judge);
        }
        assert_eq!(obs().stage(StageHist::Judge).count(), before + 1);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = obs().next_trace_id();
        let b = obs().next_trace_id();
        assert!(a != 0 && b != 0 && a != b);
    }
}
