//! Log-bucketed atomic histogram (HDR-style).
//!
//! Values are `u64` (the crate records microseconds). The bucket layout
//! is logarithmic with [`SUB_BUCKETS`] linear sub-buckets per power of
//! two: values below [`SUB_BUCKETS`] get one exact bucket each, and a
//! value `v ≥ SUB_BUCKETS` lands in a bucket of width
//! `2^(msb(v) - SUB_BITS)` — a fixed relative width of `1/SUB_BUCKETS`
//! (6.25%), so any quantile read off the bucket bounds is within one
//! bucket width of the true order statistic.
//!
//! Recording is **wait-free**: one relaxed `fetch_add` on the bucket plus
//! two on the count/sum counters — no lock is ever taken, so a metrics
//! scrape can never stall a decode worker (the failure mode of the old
//! `Mutex<Reservoir>`: `percentile` cloned and sorted 4096 samples under
//! the same lock every worker recorded into). Snapshots are relaxed reads
//! and histograms merge by bucket-wise addition, so per-shard instances
//! can be aggregated without coordination.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the sub-bucket count per octave.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power of two; relative bucket width is
/// `1 / SUB_BUCKETS`.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Largest recordable value (~2^38 µs ≈ 3 days); larger values clamp.
const MAX_VALUE: u64 = (1 << 38) - 1;
/// Octaves above the linear region: msb ∈ [SUB_BITS, 37].
const OCTAVES: usize = 38 - SUB_BITS as usize;
/// Total bucket count.
pub const BUCKETS: usize = SUB_BUCKETS as usize * (OCTAVES + 1);

/// Maps a value to its bucket index.
#[inline]
fn bucket_index(v: u64) -> usize {
    let v = v.min(MAX_VALUE);
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let octave = (msb - SUB_BITS) as usize;
        SUB_BUCKETS as usize * (octave + 1) + ((v >> shift) & (SUB_BUCKETS - 1)) as usize
    }
}

/// Inclusive upper bound of a bucket — what quantiles report.
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB_BUCKETS as usize {
        idx as u64
    } else {
        let octave = idx / SUB_BUCKETS as usize - 1;
        let sub = (idx % SUB_BUCKETS as usize) as u64;
        let width = 1u64 << octave;
        (SUB_BUCKETS + sub) * width + width - 1
    }
}

/// Wait-free log-bucketed histogram (see module docs).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

impl Histogram {
    /// An empty histogram. All-zero state, `const`-constructible.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram { buckets: [ZERO; BUCKETS], count: AtomicU64::new(0), sum: AtomicU64::new(0) }
    }

    /// Records one value (wait-free; three relaxed `fetch_add`s).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v.min(MAX_VALUE), Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (each clamped to the recordable range).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Adds another histogram's contents into this one (bucket-wise; the
    /// mergeability the per-shard aggregation relies on).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }

    /// Point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<u64> =
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        HistSnapshot {
            count: buckets.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// The `q`-quantile (0.0–1.0) as a bucket upper bound — within one
    /// bucket width (relative `1/SUB_BUCKETS`) of the true order
    /// statistic. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// Owned copy of a histogram's state, for export and quantile reads.
#[derive(Debug, Clone, Serialize)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Per-bucket counts (see [`BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// The `q`-quantile as a bucket upper bound; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Mean of recorded values; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Cumulative counts at each octave boundary, coarsened for text
    /// exposition: `(upper_bound, cumulative_count)` pairs covering the
    /// occupied range, suitable as Prometheus `le` buckets.
    pub fn cumulative_octaves(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        let mut last_boundary_cum = 0u64;
        let mut highest_nonzero = 0usize;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                highest_nonzero = i;
            }
        }
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            // Emit a boundary at the end of each octave.
            if (i + 1) % SUB_BUCKETS as usize == 0 {
                let boundary = bucket_upper(i);
                // Skip leading/trailing all-equal boundaries to keep the
                // exposition compact, but always emit boundaries where
                // counts change and the first one at/after the data.
                if cum != last_boundary_cum || (cum > 0 && i <= highest_nonzero) {
                    out.push((boundary, cum));
                    last_boundary_cum = cum;
                }
            }
            if i >= highest_nonzero && cum == self.count && !out.is_empty() {
                break;
            }
        }
        if out.is_empty() {
            out.push((bucket_upper(SUB_BUCKETS as usize - 1), cum));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_in_linear_region() {
        let h = Histogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_BUCKETS);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), SUB_BUCKETS - 1);
    }

    #[test]
    fn bucket_index_and_upper_are_consistent() {
        // Every probe value must land in a bucket whose bounds contain it.
        let mut probes: Vec<u64> = (0..200).collect();
        let mut v = 1u64;
        while v < MAX_VALUE / 2 {
            probes.extend_from_slice(&[v, v + 1, v.saturating_sub(1), 3 * v]);
            v *= 2;
        }
        for &p in &probes {
            let p = p.min(MAX_VALUE);
            let idx = bucket_index(p);
            let upper = bucket_upper(idx);
            assert!(p <= upper, "value {p} above bucket {idx} upper {upper}");
            let lower = if idx == 0 { 0 } else { bucket_upper(idx - 1) + 1 };
            assert!(p >= lower, "value {p} below bucket {idx} lower {lower}");
        }
        // Bucket uppers are strictly increasing.
        for i in 1..BUCKETS {
            assert!(bucket_upper(i) > bucket_upper(i - 1), "non-monotone at {i}");
        }
    }

    #[test]
    fn clamps_at_max_value() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0) >= MAX_VALUE);
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [5u64, 100, 10_000] {
            a.record(v);
            b.record(v * 2);
        }
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.sum(), 5 + 100 + 10_000 + 10 + 200 + 20_000);
    }
}
