//! Lock-free bounded trace ring.
//!
//! Finished spans are written into a fixed-capacity ring that overwrites
//! oldest-first, so tracing every request costs bounded memory and no
//! allocation on the hot path. Writers claim a slot with one `fetch_add`
//! and publish via a per-slot sequence word (seqlock protocol); readers
//! copy a slot and validate the sequence was stable, so a torn read is
//! detected and discarded, never returned. Every slot field is an atomic
//! word — no locks, no `unsafe`.
//!
//! Slot protocol (capacity `cap`, slot `i` serves tickets `t ≡ i mod
//! cap`): the sequence word starts at `i`; a writer with ticket `t` spins
//! (bounded) until it reads `t`, stores `t + 1` ("writing"), stores the
//! five record words, then stores `t + cap` ("published for this lap",
//! which is the *next* lap's expected ticket). Readers accept a slot only
//! when the sequence reads the same published value (`≥ cap` and `≡ i mod
//! cap`) before and after the field copy. A marker `t + 1` can never
//! equal a published value of the same slot because `t + 1 ≢ i (mod
//! cap)` for `cap > 1`.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Pipeline stage a span measures. The numeric value is the wire
/// encoding inside the ring; the name is the exporter/CLI label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[repr(u16)]
pub enum Stage {
    /// Whole request, submit → response (root span).
    Request = 0,
    /// Waiting in the admission queue.
    Queue = 1,
    /// Result-cache probe.
    Cache = 2,
    /// Tokenizing normalized assembly.
    Tokenize = 3,
    /// Encoder pass + cross-KV registration (engine admission).
    Encode = 4,
    /// Decode loop, admission → final token.
    Decode = 5,
    /// One batched decode step (all live lanes advance one token).
    DecodeStep = 6,
    /// Beam scoring: log-softmax top-k + survivor selection.
    Score = 7,
    /// Type-inference header synthesis (eval).
    TypeInf = 8,
    /// Candidate repair pass (eval).
    Repair = 9,
    /// IO judging of one hypothesis set — the BTC verification stage.
    Judge = 10,
    /// Per-example root span in the eval harness.
    Example = 11,
    /// A duplicate in-flight submission attached to a running decode
    /// (one span per attached waiter, attach → fan-out delivery;
    /// `detail` carries the leader request's trace id).
    Coalesce = 12,
    /// A submission rejected by bounded admission (queue at capacity).
    Shed = 13,
}

impl Stage {
    /// Exporter / CLI label.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::Queue => "queue",
            Stage::Cache => "cache",
            Stage::Tokenize => "tokenize",
            Stage::Encode => "encode",
            Stage::Decode => "decode",
            Stage::DecodeStep => "decode_step",
            Stage::Score => "score",
            Stage::TypeInf => "typeinf",
            Stage::Repair => "repair",
            Stage::Judge => "judge",
            Stage::Example => "example",
            Stage::Coalesce => "coalesce",
            Stage::Shed => "shed",
        }
    }

    fn from_u16(v: u16) -> Option<Stage> {
        Some(match v {
            0 => Stage::Request,
            1 => Stage::Queue,
            2 => Stage::Cache,
            3 => Stage::Tokenize,
            4 => Stage::Encode,
            5 => Stage::Decode,
            6 => Stage::DecodeStep,
            7 => Stage::Score,
            8 => Stage::TypeInf,
            9 => Stage::Repair,
            10 => Stage::Judge,
            11 => Stage::Example,
            12 => Stage::Coalesce,
            13 => Stage::Shed,
            _ => return None,
        })
    }
}

/// One finished span. `span_id` is unique within its trace; `parent` is
/// the parent's span id (`0` = root). Times are microseconds since the
/// process-wide observability epoch ([`crate::epoch_us`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SpanRecord {
    /// Request/trace id the span belongs to.
    pub trace_id: u64,
    /// Id of this span within the trace (1-based).
    pub span_id: u32,
    /// Parent span id, `0` for the root.
    pub parent: u32,
    /// Stage this span measures.
    pub stage: Stage,
    /// Start, µs since the observability epoch.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Stage-specific payload (decode: steps; decode_step: live lanes;
    /// request: 1 for a cache hit).
    pub detail: u64,
}

/// Field words per slot (trace_id, packed ids, start, dur, detail).
const FIELDS: usize = 5;

struct Slot {
    seq: AtomicU64,
    f: [AtomicU64; FIELDS],
}

/// Bounded overwrite-oldest span ring (see module docs).
pub struct TraceRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

fn pack_ids(span_id: u32, parent: u32, stage: Stage) -> u64 {
    ((span_id as u64) << 32) | ((parent as u64 & 0xffff) << 16) | stage as u64
}

impl TraceRing {
    /// A ring holding up to `capacity` spans (clamped to ≥ 2).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        let slots = (0..capacity)
            .map(|i| Slot { seq: AtomicU64::new(i as u64), f: Default::default() })
            .collect();
        TraceRing { slots, head: AtomicU64::new(0) }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans ever recorded (monotonic; exceeds capacity once wrapped).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records one span. Lock-free: claims a slot by ticket and publishes
    /// through the slot's sequence word; if a full lap of writers
    /// overtakes a stalled slot (pathological), the span is dropped
    /// rather than blocking.
    pub fn record(&self, rec: SpanRecord) {
        let cap = self.slots.len() as u64;
        let t = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(t % cap) as usize];
        // Wait for the previous lap's writer to publish; bounded spin.
        let mut spins = 0u32;
        while slot.seq.load(Ordering::Acquire) != t {
            std::hint::spin_loop();
            spins += 1;
            if spins > 10_000 {
                return; // drop rather than stall the worker
            }
        }
        slot.seq.store(t + 1, Ordering::Release);
        slot.f[0].store(rec.trace_id, Ordering::Relaxed);
        slot.f[1].store(pack_ids(rec.span_id, rec.parent, rec.stage), Ordering::Relaxed);
        slot.f[2].store(rec.start_us, Ordering::Relaxed);
        slot.f[3].store(rec.dur_us, Ordering::Relaxed);
        slot.f[4].store(rec.detail, Ordering::Relaxed);
        slot.seq.store(t + cap, Ordering::Release);
    }

    /// Copies out every published span, oldest first by slot lap. Spans
    /// mid-overwrite are skipped (seqlock validation), never torn.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let cap = self.slots.len() as u64;
        let mut out: Vec<(u64, SpanRecord)> = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            let s1 = slot.seq.load(Ordering::Acquire);
            // Published values are ≥ cap and ≡ i (mod cap).
            if s1 < cap || !(s1 - i as u64).is_multiple_of(cap) {
                continue;
            }
            let trace_id = slot.f[0].load(Ordering::Relaxed);
            let packed = slot.f[1].load(Ordering::Relaxed);
            let start_us = slot.f[2].load(Ordering::Relaxed);
            let dur_us = slot.f[3].load(Ordering::Relaxed);
            let detail = slot.f[4].load(Ordering::Relaxed);
            std::sync::atomic::fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // overwritten while copying
            }
            let Some(stage) = Stage::from_u16((packed & 0xffff) as u16) else { continue };
            out.push((
                s1, // publish ticket + cap: orders slots by lap
                SpanRecord {
                    trace_id,
                    span_id: (packed >> 32) as u32,
                    parent: ((packed >> 16) & 0xffff) as u32,
                    stage,
                    start_us,
                    dur_us,
                    detail,
                },
            ));
        }
        out.sort_by_key(|(ticket, _)| *ticket);
        out.into_iter().map(|(_, r)| r).collect()
    }

    /// Every published span of one trace, in recording order.
    pub fn for_trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        self.snapshot().into_iter().filter(|s| s.trace_id == trace_id).collect()
    }
}

/// Renders one trace's spans as an indented tree, children under their
/// parents in start order — the `slade-cli trace` output.
pub fn render_tree(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    let mut spans = spans.to_vec();
    spans.sort_by_key(|s| (s.start_us, s.span_id));
    fn emit(out: &mut String, spans: &[SpanRecord], parent: u32, depth: usize) {
        if depth > 16 {
            return; // malformed parent links cannot recurse unboundedly
        }
        for s in spans.iter().filter(|s| s.parent == parent) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!(
                "{} start={}us dur={}us detail={}\n",
                s.stage.name(),
                s.start_us,
                s.dur_us,
                s.detail
            ));
            if s.span_id != parent {
                emit(out, spans, s.span_id, depth + 1);
            }
        }
    }
    emit(&mut out, &spans, 0, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u32, parent: u32, stage: Stage, start: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent,
            stage,
            start_us: start,
            dur_us: 10,
            detail: 0,
        }
    }

    #[test]
    fn roundtrips_and_overwrites_oldest() {
        let ring = TraceRing::new(4);
        for i in 0..6u64 {
            ring.record(span(i, 1, 0, Stage::Request, i));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 4);
        // Oldest two (traces 0, 1) were overwritten.
        let traces: Vec<u64> = got.iter().map(|s| s.trace_id).collect();
        assert_eq!(traces, vec![2, 3, 4, 5]);
        assert_eq!(ring.recorded(), 6);
    }

    #[test]
    fn filters_by_trace() {
        let ring = TraceRing::new(16);
        ring.record(span(7, 1, 0, Stage::Request, 0));
        ring.record(span(7, 2, 1, Stage::Queue, 1));
        ring.record(span(8, 1, 0, Stage::Request, 2));
        let t7 = ring.for_trace(7);
        assert_eq!(t7.len(), 2);
        assert!(t7.iter().all(|s| s.trace_id == 7));
    }

    #[test]
    fn concurrent_writers_never_tear() {
        let ring = std::sync::Arc::new(TraceRing::new(64));
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let ring = std::sync::Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    // Self-consistent record: every field derives from one
                    // value, so a torn read would be detectable.
                    ring.record(SpanRecord {
                        trace_id: w * 10_000 + i,
                        span_id: (i % 100) as u32 + 1,
                        parent: 0,
                        stage: Stage::DecodeStep,
                        start_us: w * 10_000 + i,
                        dur_us: w * 10_000 + i,
                        detail: w * 10_000 + i,
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for s in ring.snapshot() {
            assert_eq!(s.trace_id, s.start_us, "torn span: {s:?}");
            assert_eq!(s.trace_id, s.dur_us, "torn span: {s:?}");
            assert_eq!(s.trace_id, s.detail, "torn span: {s:?}");
        }
        assert_eq!(ring.recorded(), 8_000);
    }

    #[test]
    fn tree_renders_nested() {
        let spans = vec![
            span(1, 1, 0, Stage::Request, 0),
            span(1, 2, 1, Stage::Queue, 1),
            span(1, 3, 1, Stage::Decode, 2),
            span(1, 4, 3, Stage::DecodeStep, 3),
        ];
        let tree = render_tree(&spans);
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("request"));
        assert!(lines[1].starts_with("  queue"));
        assert!(lines[2].starts_with("  decode"));
        assert!(lines[3].starts_with("    decode_step"));
    }
}
