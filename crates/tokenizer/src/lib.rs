//! Tokenizers for assembly and C, per the paper's §IV.
//!
//! [`UnigramTokenizer`] reproduces SLaDe's scheme: UnigramLM subword pieces
//! trained by EM over the corpus, a deliberately small vocabulary, numbers
//! tokenized **digit by digit** (`512 → 5 1 2`), every punctuation sign its
//! own token, whitespace normalized away except inside double quotes where
//! spaces are protected with the metaspace character `▁`.
//!
//! [`WordTokenizer`] is the word-level baseline used by the BTC-like model —
//! it suffers out-of-vocabulary tokens on unseen identifiers, which is one
//! of the failure modes the paper's tokenizer exists to fix.
//!
//! # Example
//!
//! ```
//! use slade_tokenizer::UnigramTokenizer;
//!
//! let corpus = ["int add(int a, int b) { return a + b; }".to_string()];
//! let tok = UnigramTokenizer::train(&corpus, 200);
//! let ids = tok.encode("int add2(int x) { return x + 512; }");
//! let text = tok.decode(&ids);
//! assert!(text.contains("add2"));
//! assert!(text.contains("512"));
//! ```

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Reserved token ids shared by both tokenizers.
pub mod special {
    /// Padding.
    pub const PAD: u32 = 0;
    /// Beginning of sequence.
    pub const BOS: u32 = 1;
    /// End of sequence.
    pub const EOS: u32 = 2;
    /// Unknown token.
    pub const UNK: u32 = 3;
    /// Span-corruption mask used by BART-style denoising pre-training
    /// (the paper's §X future-work direction, implemented in `slade`).
    pub const MASK: u32 = 4;
    /// Number of reserved ids.
    pub const COUNT: u32 = 5;
}

/// The metaspace marker protecting spaces inside string literals.
pub const METASPACE: char = '\u{2581}';

/// Pre-tokenization switches, exposing the paper's §IV design choices so
/// each can be ablated independently (see `slade-eval`'s ablation suite).
/// The defaults are the paper's recipe: digits split one per token,
/// punctuation split one sign per token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenizerOptions {
    /// Tokenize numbers digit by digit (`512 → 5 1 2`). When off, digit
    /// runs stay glued to the surrounding word, so `512` (and `x2`) are
    /// single pre-tokens — the inconsistent-segmentation failure mode the
    /// paper's rule prevents.
    pub digit_split: bool,
    /// Split every punctuation sign into its own token. When off,
    /// consecutive punctuation merges (`->` or `+=` become one pre-token).
    pub punct_split: bool,
}

impl Default for TokenizerOptions {
    fn default() -> Self {
        TokenizerOptions { digit_split: true, punct_split: true }
    }
}

/// Splits raw program text into pre-tokens with the paper's default rules:
/// identifier/keyword words, single digits, single punctuation characters,
/// and metaspace-protected string-literal characters.
///
/// SentencePiece-style: a pre-token that was preceded by whitespace in the
/// original text carries a leading [`METASPACE`] marker, so decoding is a
/// pure concatenation with `▁ → space` (whitespace runs normalize to one
/// space). Spaces inside string literals become standalone `▁` tokens —
/// the paper's "protect spaces only inside double quotes" rule.
pub fn pretokenize(text: &str) -> Vec<String> {
    pretokenize_with(text, TokenizerOptions::default())
}

/// [`pretokenize`] with explicit [`TokenizerOptions`].
pub fn pretokenize_with(text: &str, opts: TokenizerOptions) -> Vec<String> {
    #[derive(PartialEq, Clone, Copy)]
    enum Kind {
        Ident,
        Punct,
    }
    let mut out: Vec<String> = Vec::new();
    let mut word = String::new();
    let mut kind = Kind::Ident;
    let mut in_string = false;
    let mut pending_space = false;
    fn flush(word: &mut String, out: &mut Vec<String>) {
        if !word.is_empty() {
            out.push(std::mem::take(word));
        }
    }
    let push_tok = |tok: String, out: &mut Vec<String>, pending: &mut bool| {
        if *pending {
            out.push(format!("{METASPACE}{tok}"));
            *pending = false;
        } else {
            out.push(tok);
        }
    };
    for c in text.chars() {
        if in_string {
            if c == '"' {
                flush(&mut word, &mut out);
                out.push("\"".to_string());
                in_string = false;
            } else if c == ' ' {
                flush(&mut word, &mut out);
                out.push(METASPACE.to_string());
            } else if c.is_ascii_alphabetic() {
                word.push(c);
            } else {
                flush(&mut word, &mut out);
                out.push(c.to_string());
            }
            continue;
        }
        // A word-continuation character under the current options?
        let is_wordy =
            c.is_ascii_alphabetic() || c == '_' || (!opts.digit_split && c.is_ascii_digit());
        if c == '"' {
            flush(&mut word, &mut out);
            push_tok("\"".to_string(), &mut out, &mut pending_space);
            in_string = true;
        } else if c.is_ascii_digit() && opts.digit_split {
            // Digits stand alone so numbers encode consistently.
            flush(&mut word, &mut out);
            push_tok(c.to_string(), &mut out, &mut pending_space);
        } else if is_wordy {
            if kind == Kind::Punct {
                flush(&mut word, &mut out);
            }
            kind = Kind::Ident;
            if pending_space && word.is_empty() {
                word.push(METASPACE);
                pending_space = false;
            }
            word.push(c);
        } else if c.is_whitespace() {
            flush(&mut word, &mut out);
            pending_space = true;
        } else if opts.punct_split {
            flush(&mut word, &mut out);
            push_tok(c.to_string(), &mut out, &mut pending_space);
        } else {
            // Punctuation runs merge into one pre-token.
            if kind == Kind::Ident {
                flush(&mut word, &mut out);
            }
            kind = Kind::Punct;
            if pending_space && word.is_empty() {
                word.push(METASPACE);
                pending_space = false;
            }
            word.push(c);
        }
    }
    flush(&mut word, &mut out);
    out
}

/// A UnigramLM subword tokenizer (SentencePiece-style, trained with EM).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnigramTokenizer {
    pieces: Vec<String>,
    log_probs: Vec<f64>,
    index: HashMap<String, u32>,
    #[serde(default)]
    options: TokenizerOptions,
}

impl UnigramTokenizer {
    /// Trains a tokenizer over `corpus` targeting roughly `vocab_size`
    /// pieces (excluding the reserved specials), with the paper's default
    /// pre-tokenization rules. All single characters seen in the corpus are
    /// always kept, so encoding never produces `<unk>` for corpus-like text.
    pub fn train(corpus: &[String], vocab_size: usize) -> Self {
        Self::train_with(corpus, vocab_size, TokenizerOptions::default())
    }

    /// [`UnigramTokenizer::train`] with explicit pre-tokenization options
    /// (the ablation entry point; encoding honors the same options).
    pub fn train_with(corpus: &[String], vocab_size: usize, options: TokenizerOptions) -> Self {
        let mut pretoken_counts: HashMap<String, u64> = HashMap::new();
        for text in corpus {
            for t in pretokenize_with(text, options) {
                *pretoken_counts.entry(t).or_insert(0) += 1;
            }
        }
        // Seed vocabulary: all substrings up to length 8 of the pretokens.
        let mut candidate_counts: HashMap<String, f64> = HashMap::new();
        for (tok, count) in &pretoken_counts {
            let chars: Vec<char> = tok.chars().collect();
            for i in 0..chars.len() {
                for len in 1..=8.min(chars.len() - i) {
                    let piece: String = chars[i..i + len].iter().collect();
                    *candidate_counts.entry(piece).or_insert(0.0) += *count as f64;
                }
            }
        }
        // Mandatory single characters: everything seen in the corpus plus
        // the printable ASCII alphabet (the paper: "individual characters
        // present in the train set ... are also part of the vocabulary"; we
        // add full ASCII so digits/letters absent from a small corpus still
        // encode character by character).
        let mut singles: Vec<String> =
            candidate_counts.keys().filter(|p| p.chars().count() == 1).cloned().collect();
        for c in 0x20u8..0x7f {
            singles.push((c as char).to_string());
        }
        singles.push(METASPACE.to_string());
        singles.sort();
        singles.dedup();
        // Start from the most frequent multi-char candidates plus singles.
        let mut multi: Vec<(String, f64)> = candidate_counts
            .iter()
            .filter(|(p, _)| p.chars().count() > 1)
            .map(|(p, c)| (p.clone(), *c * p.chars().count() as f64))
            .collect();
        multi.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        multi.truncate(vocab_size.saturating_sub(singles.len()).max(16) * 2);
        let mut pieces: Vec<String> = singles;
        pieces.extend(multi.into_iter().map(|(p, _)| p));
        pieces.sort();
        pieces.dedup();
        let mut log_probs = vec![0.0f64; pieces.len()];
        let mut index: HashMap<String, u32> =
            pieces.iter().enumerate().map(|(i, p)| (p.clone(), i as u32)).collect();
        // Uniform init.
        let init = -((pieces.len() as f64).ln());
        log_probs.fill(init);
        // EM rounds: segment with Viterbi, re-estimate piece probabilities,
        // prune the least useful multi-char pieces.
        for round in 0..3 {
            let mut usage = vec![0.0f64; pieces.len()];
            for (tok, count) in &pretoken_counts {
                let seg = viterbi(tok, &index, &log_probs);
                for id in seg {
                    usage[id as usize] += *count as f64;
                }
            }
            let total: f64 = usage.iter().sum::<f64>().max(1.0);
            for (i, u) in usage.iter().enumerate() {
                log_probs[i] = ((u + 0.1) / total).ln();
            }
            // Prune after the first rounds, keeping singles.
            if round < 2 {
                let keep_target = vocab_size.max(64);
                if pieces.len() > keep_target {
                    let mut order: Vec<usize> = (0..pieces.len()).collect();
                    order.sort_by(|&a, &b| usage[b].total_cmp(&usage[a]));
                    let mut keep = vec![false; pieces.len()];
                    for (kept, &i) in order.iter().enumerate() {
                        if kept >= keep_target {
                            break;
                        }
                        keep[i] = true;
                    }
                    for (i, p) in pieces.iter().enumerate() {
                        if p.chars().count() == 1 {
                            keep[i] = true;
                        }
                    }
                    let mut new_pieces = Vec::new();
                    let mut new_probs = Vec::new();
                    for i in 0..pieces.len() {
                        if keep[i] {
                            new_pieces.push(pieces[i].clone());
                            new_probs.push(log_probs[i]);
                        }
                    }
                    pieces = new_pieces;
                    log_probs = new_probs;
                    index =
                        pieces.iter().enumerate().map(|(i, p)| (p.clone(), i as u32)).collect();
                }
            }
        }
        UnigramTokenizer { pieces, log_probs, index, options }
    }

    /// Total vocabulary size including the reserved specials.
    pub fn vocab_size(&self) -> usize {
        self.pieces.len() + special::COUNT as usize
    }

    /// The pre-tokenization options this tokenizer was trained with.
    pub fn options(&self) -> TokenizerOptions {
        self.options
    }

    /// Encodes text into token ids (without BOS/EOS).
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let mut out = Vec::new();
        for tok in pretokenize_with(text, self.options) {
            if let Some(&id) = self.index.get(&tok) {
                out.push(id + special::COUNT);
                continue;
            }
            let seg = viterbi(&tok, &self.index, &self.log_probs);
            if seg.is_empty() {
                out.push(special::UNK);
            } else {
                out.extend(seg.into_iter().map(|id| id + special::COUNT));
            }
        }
        out
    }

    /// Decodes ids back to text: pieces concatenate, `▁` becomes a space.
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut out = String::new();
        for &id in ids {
            if id < special::COUNT {
                continue;
            }
            let piece = match self.pieces.get((id - special::COUNT) as usize) {
                Some(p) => p,
                None => continue,
            };
            for c in piece.chars() {
                out.push(if c == METASPACE { ' ' } else { c });
            }
        }
        out.trim().to_string()
    }

    /// The piece string for a token id, if it is not a special.
    pub fn piece(&self, id: u32) -> Option<&str> {
        if id < special::COUNT {
            None
        } else {
            self.pieces.get((id - special::COUNT) as usize).map(|s| s.as_str())
        }
    }
}

/// Viterbi segmentation of one pretoken into known pieces; empty when some
/// character is not covered (callers map that to `<unk>`).
fn viterbi(token: &str, index: &HashMap<String, u32>, log_probs: &[f64]) -> Vec<u32> {
    let chars: Vec<char> = token.chars().collect();
    let n = chars.len();
    if n == 0 {
        return Vec::new();
    }
    const NEG: f64 = -1e18;
    let mut best = vec![NEG; n + 1];
    let mut back: Vec<Option<(usize, u32)>> = vec![None; n + 1];
    best[0] = 0.0;
    for i in 0..n {
        if best[i] <= NEG / 2.0 {
            continue;
        }
        let max_len = 12.min(n - i);
        let mut piece = String::new();
        for len in 1..=max_len {
            piece.push(chars[i + len - 1]);
            if let Some(&id) = index.get(&piece) {
                let score = best[i] + log_probs[id as usize];
                if score > best[i + len] {
                    best[i + len] = score;
                    back[i + len] = Some((i, id));
                }
            }
        }
    }
    if back[n].is_none() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut pos = n;
    while pos > 0 {
        let Some((prev, id)) = back[pos] else { return Vec::new() };
        out.push(id);
        pos = prev;
    }
    out.reverse();
    out
}

/// Word-level tokenizer (the BTC baseline's scheme): whole pre-tokens are
/// vocabulary entries; everything unseen becomes `<unk>`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WordTokenizer {
    words: Vec<String>,
    index: HashMap<String, u32>,
}

impl WordTokenizer {
    /// Trains on `corpus`, keeping the `vocab_size` most frequent words.
    pub fn train(corpus: &[String], vocab_size: usize) -> Self {
        let mut counts: HashMap<String, u64> = HashMap::new();
        for text in corpus {
            for t in pretokenize(text) {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        let mut ordered: Vec<(String, u64)> = counts.into_iter().collect();
        ordered.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ordered.truncate(vocab_size);
        let words: Vec<String> = ordered.into_iter().map(|(w, _)| w).collect();
        let index = words.iter().enumerate().map(|(i, w)| (w.clone(), i as u32)).collect();
        WordTokenizer { words, index }
    }

    /// Total vocabulary size including specials.
    pub fn vocab_size(&self) -> usize {
        self.words.len() + special::COUNT as usize
    }

    /// Encodes text; unknown words become [`special::UNK`].
    pub fn encode(&self, text: &str) -> Vec<u32> {
        pretokenize(text)
            .into_iter()
            .map(|t| self.index.get(&t).map(|&i| i + special::COUNT).unwrap_or(special::UNK))
            .collect()
    }

    /// Decodes ids, spacing words apart (`<unk>` renders as `UNK`).
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut parts = Vec::new();
        for &id in ids {
            if id == special::UNK {
                parts.push("UNK".to_string());
            } else if id >= special::COUNT {
                if let Some(w) = self.words.get((id - special::COUNT) as usize) {
                    parts.push(w.trim_start_matches(METASPACE).to_string());
                }
            }
        }
        parts.join(" ")
    }

    /// Fraction of tokens in `text` that are out-of-vocabulary.
    pub fn oov_rate(&self, text: &str) -> f64 {
        let toks = pretokenize(text);
        if toks.is_empty() {
            return 0.0;
        }
        let oov = toks.iter().filter(|t| !self.index.contains_key(*t)).count();
        oov as f64 / toks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretokenizer_splits_digits_individually() {
        let toks = pretokenize("x = 512;");
        let m = METASPACE;
        assert_eq!(
            toks,
            vec![
                "x".to_string(),
                format!("{m}="),
                format!("{m}5"),
                "1".to_string(),
                "2".to_string(),
                ";".to_string()
            ]
        );
    }

    #[test]
    fn pretokenizer_splits_punctuation() {
        let toks = pretokenize("a->b += c[i];");
        let plain: Vec<String> =
            toks.iter().map(|t| t.trim_start_matches(METASPACE).to_string()).collect();
        assert_eq!(plain, vec!["a", "-", ">", "b", "+", "=", "c", "[", "i", "]", ";"]);
    }

    #[test]
    fn pretokenizer_protects_string_spaces() {
        let toks = pretokenize("s = \"a b\";");
        assert!(toks.contains(&METASPACE.to_string()), "{toks:?}");
    }

    fn sample_corpus() -> Vec<String> {
        vec![
            "int add(int a, int b) { return a + b; }".to_string(),
            "int sub(int a, int b) { return a - b; }".to_string(),
            "void copy(int *dst, int *src, int n) { for (int i = 0; i < n; i++) dst[i] = src[i]; }".to_string(),
            "movl %edi, %eax\naddl %esi, %eax\nret".to_string(),
        ]
    }

    #[test]
    fn unigram_roundtrips_seen_text() {
        let tok = UnigramTokenizer::train(&sample_corpus(), 300);
        let ids = tok.encode("int add(int a, int b) { return a + b; }");
        let text = tok.decode(&ids);
        // Round trip normalizes whitespace but preserves all symbols.
        let norm = |s: &str| s.chars().filter(|c| !c.is_whitespace()).collect::<String>();
        assert_eq!(norm(&text), norm("int add(int a, int b) { return a + b; }"));
    }

    #[test]
    fn unigram_handles_unseen_identifiers_via_subwords() {
        let tok = UnigramTokenizer::train(&sample_corpus(), 300);
        let ids = tok.encode("int zz_unseen_name(int zq) { return zq; }");
        assert!(!ids.contains(&special::UNK), "subwords must cover unseen identifiers");
        let text = tok.decode(&ids);
        assert!(text.contains("zz_unseen_name"), "{text}");
    }

    #[test]
    fn numbers_encode_digit_by_digit() {
        let tok = UnigramTokenizer::train(&sample_corpus(), 300);
        let ids = tok.encode("512");
        let pieces: Vec<&str> = ids.iter().filter_map(|&i| tok.piece(i)).collect();
        assert_eq!(pieces, vec!["5", "1", "2"], "large numbers must not merge");
    }

    #[test]
    fn decode_restores_number_adjacency() {
        let tok = UnigramTokenizer::train(&sample_corpus(), 300);
        let ids = tok.encode("return 512;");
        let text = tok.decode(&ids);
        assert!(text.contains("512"), "{text}");
    }

    #[test]
    fn word_tokenizer_has_oov_on_unseen_names() {
        let tok = WordTokenizer::train(&sample_corpus(), 100);
        let ids = tok.encode("int zz_unseen_name(int zq) { return zq; }");
        assert!(ids.contains(&special::UNK));
        assert!(tok.oov_rate("zz_unseen_name qqq_what") > 0.0);
    }

    #[test]
    fn vocab_size_is_bounded() {
        let tok = UnigramTokenizer::train(&sample_corpus(), 120);
        // Singles are always kept, so allow some slack above the target.
        assert!(tok.vocab_size() < 400, "{}", tok.vocab_size());
    }

    #[test]
    fn serde_roundtrip() {
        let tok = UnigramTokenizer::train(&sample_corpus(), 120);
        let json = serde_json::to_string(&tok).unwrap();
        let back: UnigramTokenizer = serde_json::from_str(&json).unwrap();
        assert_eq!(tok.encode("int x = 3;"), back.encode("int x = 3;"));
    }

    #[test]
    fn default_options_match_paper_recipe() {
        let opts = TokenizerOptions::default();
        assert!(opts.digit_split && opts.punct_split);
        // pretokenize and pretokenize_with(default) agree.
        let text = "a[i] += 512; /* \"x y\" */";
        assert_eq!(pretokenize(text), pretokenize_with(text, opts));
    }

    #[test]
    fn digit_split_off_keeps_numbers_whole() {
        let opts = TokenizerOptions { digit_split: false, punct_split: true };
        let toks = pretokenize_with("x2 = 512;", opts);
        let plain: Vec<String> =
            toks.iter().map(|t| t.trim_start_matches(METASPACE).to_string()).collect();
        assert_eq!(plain, vec!["x2", "=", "512", ";"]);
    }

    #[test]
    fn punct_split_off_merges_operator_runs() {
        let opts = TokenizerOptions { digit_split: true, punct_split: false };
        let toks = pretokenize_with("a->b += c;", opts);
        let plain: Vec<String> =
            toks.iter().map(|t| t.trim_start_matches(METASPACE).to_string()).collect();
        assert_eq!(plain, vec!["a", "->", "b", "+=", "c", ";"]);
    }

    #[test]
    fn trained_options_are_used_for_encoding() {
        let opts = TokenizerOptions { digit_split: false, punct_split: true };
        let tok = UnigramTokenizer::train_with(&sample_corpus(), 300, opts);
        assert_eq!(tok.options(), opts);
        // "512" can now be a single piece (it appears nowhere in the corpus,
        // so it segments to characters — but via word-level pretokens).
        let ids = tok.encode("copy");
        let pieces: Vec<&str> = ids.iter().filter_map(|&i| tok.piece(i)).collect();
        assert_eq!(pieces.join(""), "copy");
    }

    #[test]
    fn old_serialized_tokenizers_deserialize_with_default_options() {
        let tok = UnigramTokenizer::train(&sample_corpus(), 120);
        let mut json: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&tok).unwrap()).unwrap();
        // Simulate a pre-options artifact by removing the field.
        json.as_object_mut().unwrap().remove("options");
        let back: UnigramTokenizer = serde_json::from_value(json).unwrap();
        assert_eq!(back.options(), TokenizerOptions::default());
    }
}
