//! The paper's Figure 1 walk-through: compile `add(int*, int, int)` at
//! `-O3`, then show what each decompiler family makes of it.
//!
//! Run with: `cargo run --example motivation --release`

use slade_baselines::ghidra_decompile;
use slade_compiler::{compile_function, CompileOpts, Isa, OptLevel};
use slade_minic::parse_program;

const ORIGINAL: &str = r#"
void add(int *list, int val, int n) {
  int i;
  for (i = 0; i < n; ++i) {
    list[i] += val;
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(ORIGINAL)?;
    println!("=== Box 2: original source ===\n{ORIGINAL}");

    // GCC -O3 unrolls and vectorizes, exactly like the paper's Box 4.
    let o3 = compile_function(&program, "add", CompileOpts::new(Isa::X86_64, OptLevel::O3))?;
    println!(
        "=== Box 4: x86 -O3 assembly ({} lines, note movdqu/pshufd/paddd) ===\n{o3}",
        o3.lines().count()
    );

    // The rule-based decompiler cannot model the vector instructions.
    match ghidra_decompile(&o3, slade_asm::Isa::X86_64, "add") {
        Ok(c) => println!("=== Ghidra-like on -O3 ===\n{c}"),
        Err(e) => println!("=== Ghidra-like on -O3 ===\nFAILS: {e}\n(the paper's Ghidra collapse on optimized code)"),
    }

    // At -O0 the literal lifter succeeds — but look at the output.
    let o0 = compile_function(&program, "add", CompileOpts::new(Isa::X86_64, OptLevel::O0))?;
    let lifted =
        ghidra_decompile(&o0, slade_asm::Isa::X86_64, "add").map_err(std::io::Error::other)?;
    println!(
        "=== Box 1 analogue: Ghidra-like on -O0 (correct but unreadable, {} chars vs {} in the source) ===\n{lifted}",
        lifted.len(),
        ORIGINAL.trim().len()
    );
    println!("SLaDe's output for this function is the readable loop itself — see the quickstart example.");
    Ok(())
}
