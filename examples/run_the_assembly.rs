//! Demonstrates the "we actually run the assembly" fidelity: the same
//! function executed three ways — interpreted C, emulated x86 `-O0`, and
//! emulated x86 `-O3` (vectorized) — must agree byte for byte.
//!
//! Run with: `cargo run --example run_the_assembly --release`

use slade_asm::parse_asm;
use slade_compiler::{compile_function, CompileOpts, Isa, OptLevel};
use slade_emu::{Arg, Emulator};
use slade_minic::{parse_program, Interpreter, Value};

const SRC: &str = r#"
void add(int *list, int val, int n) {
  int i;
  for (i = 0; i < n; ++i) list[i] += val;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(SRC)?;
    let input: Vec<i32> = (0..11).collect();
    let bytes: Vec<u8> = input.iter().flat_map(|v| v.to_le_bytes()).collect();

    // 1. Reference semantics: the MiniC interpreter.
    let mut interp = Interpreter::new(&program)?;
    let buf = interp.alloc_buffer(&bytes);
    interp.call("add", &[Value::Ptr(buf), Value::int(100), Value::int(11)])?;
    let reference = interp.read_buffer(buf, bytes.len())?;

    // 2-3. The real emitted assembly, at both optimization levels.
    for opt in [OptLevel::O0, OptLevel::O3] {
        let asm = compile_function(&program, "add", CompileOpts::new(Isa::X86_64, opt))?;
        let vectorized = asm.contains("paddd");
        let mut emu = Emulator::new(parse_asm(&asm, slade_asm::Isa::X86_64));
        let ebuf = emu.alloc_buffer(&bytes);
        emu.call("add", &[Arg::Int(ebuf), Arg::Int(100), Arg::Int(11)])?;
        let out = emu.read_buffer(ebuf, bytes.len())?;
        assert_eq!(out, reference, "{opt} emulation diverged!");
        println!(
            "x86 {opt}: {} instructions{} — matches interpreter byte-for-byte",
            asm.lines().count(),
            if vectorized { " (vectorized: movdqu/pshufd/paddd)" } else { "" }
        );
    }
    println!("all three executions agree.");
    Ok(())
}
