//! Quickstart: train a small SLaDe on generated data and decompile a
//! function it has never seen.
//!
//! Run with: `cargo run --example quickstart --release`

use slade::{SladeBuilder, TrainProfile};
use slade_compiler::{compile_function, CompileOpts, Isa, OptLevel};
use slade_dataset::{generate_exebench_eval, generate_train, DatasetProfile};
use slade_eval::{judge, reference_observations};
use slade_minic::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a training set (the ExeBench stand-in) and train.
    let data = DatasetProfile { train: 250, exebench_eval: 12, synth_per_category: 2 };
    let train_items = generate_train(data, 7);
    println!("training SLaDe (x86 -O0) on {} functions ...", train_items.len());
    let slade = SladeBuilder::new(Isa::X86_64, OptLevel::O0)
        .profile(TrainProfile { max_src_len: 1024, epochs: 3, ..TrainProfile::tiny() })
        .train(&train_items, 7);

    // 2. Pick a held-out function, compile it, and decompile the assembly.
    let eval_items = generate_exebench_eval(data, 7, &train_items);
    let item = &eval_items[0];
    let program = parse_program(&item.full_src())?;
    let asm =
        compile_function(&program, &item.name, CompileOpts::new(Isa::X86_64, OptLevel::O0))?;
    println!("\n--- ground truth ---\n{}", item.func_src);
    println!("--- assembly ({} lines) ---", asm.lines().count());

    // 3. Beam-search candidates with type inference, then IO-test them.
    let reference = reference_observations(item).map_err(std::io::Error::other)?;
    for (rank, (hypothesis, header)) in
        slade.decompile_with_types(&asm, &item.context_src).into_iter().enumerate()
    {
        let verdict = judge(item, &reference, &hypothesis, &header);
        println!(
            "\n--- candidate {rank} (compiles: {}, IO-correct: {}) ---\n{hypothesis}",
            verdict.compiles, verdict.correct
        );
        if verdict.correct {
            println!("=> selected (first candidate passing the IO tests)");
            break;
        }
    }
    Ok(())
}
