//! Portability: the paper's headline property is that one neural recipe
//! retargets to a new ISA with *zero* engineering effort — "the first
//! neural decompiler to be applied across ISAs and optimization levels".
//!
//! This example trains the identical pipeline twice, once on x86-64 and
//! once on AArch64 assembly of the same functions, then decompiles the
//! same held-out function from both ISAs' assembly.
//!
//! Run with: `cargo run --example portability --release`

use slade::{SladeBuilder, TrainProfile};
use slade_compiler::{compile_function, CompileOpts, Isa, OptLevel};
use slade_dataset::{generate_exebench_eval, generate_train, DatasetProfile};
use slade_eval::{judge, reference_observations};
use slade_minic::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = DatasetProfile { train: 250, exebench_eval: 12, synth_per_category: 2 };
    let train_items = generate_train(data, 21);
    let eval_items = generate_exebench_eval(data, 21, &train_items);
    let item = &eval_items[0];
    let program = parse_program(&item.full_src())?;
    println!("--- ground truth ---\n{}", item.func_src);

    for isa in [Isa::X86_64, Isa::Arm64] {
        // Same recipe, same hyperparameters, different ISA — the only
        // change is which backend produced the training assembly.
        println!("\n================ {isa} ================");
        let slade = SladeBuilder::new(isa, OptLevel::O0)
            .profile(TrainProfile { max_src_len: 1024, epochs: 3, ..TrainProfile::tiny() })
            .train(&train_items, 21);
        let asm = compile_function(&program, &item.name, CompileOpts::new(isa, OptLevel::O0))?;
        println!(
            "assembly: {} lines, first line: {:?}",
            asm.lines().count(),
            asm.lines().next().unwrap_or("")
        );
        let reference = reference_observations(item).map_err(std::io::Error::other)?;
        let candidates = slade.decompile_with_types(&asm, &item.context_src);
        let mut selected = false;
        for (rank, (hypothesis, header)) in candidates.iter().enumerate() {
            let verdict = judge(item, &reference, hypothesis, header);
            if verdict.correct {
                println!("candidate {rank} passes the IO tests:\n{hypothesis}");
                selected = true;
                break;
            }
        }
        if !selected {
            println!(
                "no candidate passed IO at this tiny scale; top beam:\n{}",
                candidates.first().map(|(h, _)| h.as_str()).unwrap_or("<none>")
            );
        }
    }
    println!(
        "\nThe point: retargeting required no new rules, no new lifter — only \
         assembly from a different backend. (Compare Ghidra's per-ISA effort.)"
    );
    Ok(())
}
