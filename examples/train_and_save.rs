//! Model persistence workflow: train once, save the decompiler (model +
//! tokenizer) as a JSON artifact, reload it in a "deployment" step and
//! verify the reloaded pipeline decodes identically.
//!
//! This is the workflow the paper's artifact ships (trained checkpoints +
//! tokenizers, loaded for evaluation); the `slade-cli` binary wraps the
//! same calls for the command line.
//!
//! Run with: `cargo run --example train_and_save --release`

use slade::{Slade, SladeBuilder, TrainProfile};
use slade_compiler::{compile_function, CompileOpts, Isa, OptLevel};
use slade_dataset::{generate_train, DatasetProfile};
use slade_minic::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = DatasetProfile { train: 150, exebench_eval: 8, synth_per_category: 2 };
    let items = generate_train(data, 33);
    println!("training on {} functions ...", items.len());
    let slade = SladeBuilder::new(Isa::X86_64, OptLevel::O0)
        .profile(TrainProfile { max_src_len: 1024, epochs: 3, ..TrainProfile::tiny() })
        .train(&items, 33);

    // Persist. The artifact is plain JSON: weights, tokenizer pieces,
    // beam configuration — everything inference needs.
    let path = std::env::temp_dir().join("slade_model.json");
    std::fs::write(&path, slade.to_json())?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("saved {} ({bytes} bytes)", path.display());

    // Reload in a fresh "process" and compare behaviour.
    let reloaded =
        Slade::from_json(&std::fs::read_to_string(&path)?).map_err(std::io::Error::other)?;
    let program = parse_program("int sum3(int a, int b, int c) { return a + b + c; }")?;
    let asm = compile_function(&program, "sum3", CompileOpts::new(Isa::X86_64, OptLevel::O0))?;
    let a = slade.decompile(&asm);
    let b = reloaded.decompile(&asm);
    assert_eq!(a, b, "reloaded model must decode identically");
    println!("reloaded model decodes identically ({} candidates)", b.len());
    println!("top candidate:\n{}", b.first().map(String::as_str).unwrap_or("<none>"));
    std::fs::remove_file(&path).ok();
    Ok(())
}
