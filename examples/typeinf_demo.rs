//! Type-inference walk-through (paper §VI-B): hypotheses referencing
//! out-of-context types are made compilable by the PsycheC-style engine.
//!
//! Run with: `cargo run --example typeinf_demo --release`

use slade_minic::{parse_program, Interpreter, Value};
use slade_typeinf::infer_missing_types;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A model hypothesis using a typedef it saw during training but which
    // the evaluation context does not define (the paper's `my_int` case).
    let hypothesis =
        "my_int fact(my_int n) { my_int r = 1; while (n > 1) { r *= n; n -= 1; } return r; }";
    println!("hypothesis:\n{hypothesis}\n");
    println!(
        "without inference: {}",
        parse_program(hypothesis).err().map(|e| e.to_string()).unwrap_or("parses?".into())
    );
    let header = infer_missing_types(hypothesis, "").map_err(std::io::Error::other)?;
    println!("\ninferred header:\n{header}");
    let full = format!("{header}\n{hypothesis}");
    let program = parse_program(&full)?;
    let mut interp = Interpreter::new(&program)?;
    let out = interp.call("fact", &[Value::int(6)])?;
    println!("recompiled and executed: fact(6) = {}", out.ret.unwrap());

    // The paper's struct case: unknown struct pointer with field accesses.
    let clock = r#"
void clock_add(struct clock *ev, double d) {
    if (ev) { ev->curtime += 1; ev->seqno++; }
}
"#;
    let header = infer_missing_types(clock, "").map_err(std::io::Error::other)?;
    println!("\nstruct hypothesis:\n{clock}\ninferred header:\n{header}");
    Ok(())
}
