//! Neural + analytic integration (paper §X: "it would be interesting to
//! investigate how learnable and analytic approaches could be best
//! integrated").
//!
//! The hybrid is candidate-level: the rule-based lifter's output is tried
//! *first*, then the neural beam candidates — the first hypothesis passing
//! the IO tests wins. On easy `-O0` code the lifter's literal translation
//! usually passes immediately; on vectorized `-O3` code, where the lifter
//! collapses, the neural candidates carry the configuration.
//!
//! Run with: `cargo run --example hybrid_pipeline --release`

use slade::{SladeBuilder, TrainProfile};
use slade_baselines::ghidra_decompile;
use slade_compiler::{compile_function, CompileOpts, Isa, OptLevel};
use slade_dataset::{generate_synth, generate_train, DatasetProfile};
use slade_eval::{judge, reference_observations};
use slade_minic::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = DatasetProfile { train: 250, exebench_eval: 16, synth_per_category: 2 };
    let train_items = generate_train(data, 5);
    // The Synth suite includes the array/BLAS/DSP categories whose `-O3`
    // vectorization is what defeats literal lifting.
    let eval_items = generate_synth(data, 5, &train_items);

    for opt in [OptLevel::O0, OptLevel::O3] {
        println!("\n================ x86-64 {opt} ================");
        let slade = SladeBuilder::new(Isa::X86_64, opt)
            .profile(TrainProfile { max_src_len: 1024, epochs: 3, ..TrainProfile::tiny() })
            .train(&train_items, 5);
        let mut lifter_won = 0usize;
        let mut neural_won = 0usize;
        let mut neither: Vec<String> = Vec::new();
        let mut lift_failed: Vec<String> = Vec::new();
        for item in &eval_items {
            let Ok(program) = parse_program(&item.full_src()) else { continue };
            let Ok(asm) =
                compile_function(&program, &item.name, CompileOpts::new(Isa::X86_64, opt))
            else {
                continue;
            };
            let Ok(reference) = reference_observations(item) else { continue };
            // Candidate order: analytic lift first, then the neural beam.
            let mut candidates: Vec<(String, String)> = Vec::new();
            match ghidra_decompile(&asm, slade_asm::Isa::X86_64, &item.name) {
                Ok(lifted) => candidates.push((lifted, String::new())),
                Err(_) => lift_failed.push(format!("{:?}", item.category)),
            }
            let lifter_candidates = candidates.len();
            candidates.extend(slade.decompile_with_types(&asm, &item.context_src));
            let winner = candidates
                .iter()
                .position(|(hyp, header)| judge(item, &reference, hyp, header).correct);
            match winner {
                Some(i) if i < lifter_candidates => lifter_won += 1,
                Some(_) => neural_won += 1,
                None => neither.push(format!("{:?}", item.category)),
            }
        }
        println!(
            "first-passing candidate: lifter {lifter_won}, neural {neural_won}, \
             none {} (of {} items)",
            neither.len(),
            lifter_won + neural_won + neither.len()
        );
        if !lift_failed.is_empty() {
            println!("lift failures (unsupported instructions): {lift_failed:?}");
        }
        if !neither.is_empty() {
            println!("carried by neither at this scale: {neither:?}");
        }
    }
    println!(
        "\nThe complementarity: at -O0 the literal lift passes the IO tests \
         immediately, so the analytic half carries. At -O3 the vectorized \
         categories defeat the lifter entirely (lift failures above) and only \
         a neural candidate can cover them — at this example's tiny training \
         scale the model rarely does, at the paper's scale it is what makes \
         the hybrid strictly dominate both halves (see `cargo bench --bench \
         ablations`, hybrid section)."
    );
    Ok(())
}
