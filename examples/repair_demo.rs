//! Program repair (paper §X future work): mechanically fixing the shallow
//! compile failures that cost neural decompilers IO accuracy.
//!
//! Shows the repair loop on the characteristic failure shapes — truncated
//! decode, trailing garbage, out-of-context identifiers/types — and then
//! the IO harness rejecting a repair that compiles but diverges.
//!
//! Run with: `cargo run --example repair_demo --release`

use slade_repair::{repair, try_compile, RepairReport};

fn show(title: &str, hypothesis: &str, context: &str) -> RepairReport {
    println!("== {title} ==");
    println!("input:\n{hypothesis}");
    let report = repair(hypothesis, context);
    match &report.source {
        Some(fixed) if report.was_already_valid() => {
            println!("already compiles; returned unchanged ({} bytes)\n", fixed.len());
        }
        Some(fixed) => {
            println!("repaired in {} round(s):", report.rounds);
            for step in &report.steps {
                println!("  - {step:?}");
            }
            println!("output:\n{fixed}\n");
            assert!(try_compile(fixed, context).is_ok());
        }
        None => {
            println!(
                "unrepairable after {} round(s); steps tried: {:?}\n",
                report.rounds, report.steps
            );
        }
    }
    report
}

fn main() {
    // 1. The decoder ran out of length budget mid-function.
    show(
        "truncated decode (missing braces)",
        "int scale_sum(int *arr, int n, int k) {\n  int s = 0;\n  for (int i = 0; i < n; i++) {\n    s += arr[i] * k;",
        "",
    );

    // 2. The decoder kept sampling past the function.
    show(
        "trailing garbage after the function",
        "int twice(int a) { return 2 * a; }\nint twice(int a) { return 2 *",
        "",
    );

    // 3. Out-of-context identifier — the model assumed a global exists.
    show("undeclared global", "int bump(int d) { counter += d; return counter; }", "");

    // 4. Out-of-context type — normally type inference's job (§VI-B);
    //    repair keeps a typedef backstop for when that stage is disabled.
    show("unknown typedef", "my_len total_len(my_len a, my_len b) { return a + b; }", "");

    // 5. Repair only restores *compilability* — semantics still go through
    //    the IO harness, which is what rejects wrong-but-compiling fixes.
    println!("== repair is not a semantics oracle ==");
    let wrong = "int add(int a, int b) { return a - b;"; // typo: minus
    let report = repair(wrong, "");
    let fixed = report.source.expect("mechanically repairable");
    println!(
        "repaired `{}` compiles, but the IO harness will reject it against\n\
         an `add` reference because -(minus) is not +(plus): repair widens the\n\
         candidate pool, IO selection still owns correctness.",
        fixed.replace('\n', " ")
    );
}
