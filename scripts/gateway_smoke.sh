#!/usr/bin/env bash
# End-to-end smoke test for the HTTP gateway: boots `slade-cli serve` on
# an ephemeral port, POSTs a decompile request, asserts a 200 with valid
# JSON candidates, scrapes /metrics through `slade-cli stats --url`, and
# greps the gateway counter families. Run from the repo root; pass a
# prebuilt slade-cli path as $1 to skip the cargo build.
set -euo pipefail

CLI="${1:-}"
if [[ -z "$CLI" ]]; then
  cargo build --release --bin slade-cli
  CLI=target/release/slade-cli
fi

WORK="$(mktemp -d)"
ADDR_FILE="$WORK/addr"
SERVER_LOG="$WORK/serve.log"

cleanup() {
  [[ -n "${SERVER_PID:-}" ]] && kill "$SERVER_PID" 2>/dev/null || true
  [[ -n "${SERVER_PID:-}" ]] && wait "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$CLI" serve --addr 127.0.0.1:0 --addr-file "$ADDR_FILE" \
  --shards 2 --queue-cap 32 --timeout-ms 30000 >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!

# The addr file appears once the listener is bound.
for _ in $(seq 1 100); do
  [[ -s "$ADDR_FILE" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$SERVER_LOG"; exit 1; }
  sleep 0.2
done
[[ -s "$ADDR_FILE" ]] || { echo "server never wrote $ADDR_FILE"; cat "$SERVER_LOG"; exit 1; }
ADDR="$(cat "$ADDR_FILE")"
echo "gateway listening on $ADDR"

# POST /v1/decompile: 200 with a non-empty JSON candidates array.
BODY='{"asm":"f0:\n\tpushq %rbp\n\tmovq %rsp, %rbp\n\tmovl %edi, -4(%rbp)\n\taddl $3, %eax\n\tpopq %rbp\n\tret\n","isa":"x86","opt":"O0"}'
STATUS="$(curl -sS -o "$WORK/resp.json" -w '%{http_code}' \
  -H 'content-type: application/json' -H 'x-slade-client: smoke' \
  -d "$BODY" "http://$ADDR/v1/decompile")"
echo "POST /v1/decompile -> $STATUS"
[[ "$STATUS" == "200" ]] || { cat "$WORK/resp.json"; cat "$SERVER_LOG"; exit 1; }
python3 - "$WORK/resp.json" <<'EOF'
import json, sys
resp = json.load(open(sys.argv[1]))
assert isinstance(resp["trace_id"], int), resp
assert isinstance(resp["candidates"], list) and resp["candidates"], resp
assert all(isinstance(c, str) for c in resp["candidates"]), resp
print(f"ok: {len(resp['candidates'])} candidates, trace {resp['trace_id']}")
EOF

# /healthz answers.
curl -sS "http://$ADDR/healthz" | grep -q '"status":"ok"'

# The stats scrape mode validates the combined exposition.
"$CLI" stats --url "http://$ADDR"

# Raw scrape carries both the runtime and gateway families.
curl -sS "http://$ADDR/metrics" >"$WORK/metrics.prom"
grep -E '^slade_gateway_requests_total\{code="200"\} [1-9]' "$WORK/metrics.prom"
grep -E '^slade_gateway_connections_total [1-9]' "$WORK/metrics.prom"
grep -E '^slade_requests_submitted_total [1-9]' "$WORK/metrics.prom"
grep -c '^# TYPE ' "$WORK/metrics.prom"

echo "gateway smoke passed"
