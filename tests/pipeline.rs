//! Cross-crate integration tests: the full decompilation loop exercised
//! end-to-end at tiny scale, plus cross-validation between the compiler,
//! the emulator, the interpreter and the lifter on the same programs.

use slade_asm::parse_asm;
use slade_compiler::{compile_function, CompileOpts, Isa, OptLevel};
use slade_dataset::{generate_train, ArgSpec, DatasetProfile};
use slade_emu::{Arg, Emulator};
use slade_eval::{judge, reference_observations};
use slade_minic::{parse_program, Interpreter, Value};

/// For generated integer items: the compiled x86 assembly (run in the
/// emulator) must agree with the ground-truth C (run in the interpreter) —
/// the compiler correctness property everything else rests on.
#[test]
fn compiler_emulator_interpreter_agree_on_dataset_items() {
    let items = generate_train(DatasetProfile::tiny(), 31);
    let mut validated = 0;
    for item in &items {
        // Only context-free items whose inputs the emulator can mirror.
        if !item.context_src.is_empty() {
            continue;
        }
        let all_simple =
            item.inputs.iter().flatten().all(|a| {
                matches!(a, ArgSpec::Int(_) | ArgSpec::IntBuf(_) | ArgSpec::CharBuf(_))
            });
        if !all_simple {
            continue;
        }
        let program = parse_program(&item.full_src()).unwrap();
        for opt in [OptLevel::O0, OptLevel::O3] {
            let asm = match compile_function(
                &program,
                &item.name,
                CompileOpts::new(Isa::X86_64, opt),
            ) {
                Ok(a) => a,
                Err(_) => continue,
            };
            let file = parse_asm(&asm, slade_asm::Isa::X86_64);
            for input in &item.inputs {
                // Interpreter run.
                let mut interp = Interpreter::new(&program).unwrap();
                let mut iargs = Vec::new();
                let mut ibufs = Vec::new();
                // Emulator run.
                let mut emu = Emulator::new(file.clone());
                let mut eargs = Vec::new();
                let mut ebufs = Vec::new();
                for spec in input {
                    match spec {
                        ArgSpec::Int(v) => {
                            iargs.push(Value::long(*v));
                            eargs.push(Arg::Int(*v as u64));
                        }
                        ArgSpec::IntBuf(vs) => {
                            let bytes: Vec<u8> =
                                vs.iter().flat_map(|v| v.to_le_bytes()).collect();
                            let ip = interp.alloc_buffer(&bytes);
                            ibufs.push((ip, bytes.len()));
                            iargs.push(Value::Ptr(ip));
                            let ep = emu.alloc_buffer(&bytes);
                            ebufs.push((ep, bytes.len()));
                            eargs.push(Arg::Int(ep));
                        }
                        ArgSpec::CharBuf(bs) => {
                            let mut bytes = bs.clone();
                            bytes.push(0);
                            let ip = interp.alloc_buffer(&bytes);
                            ibufs.push((ip, bytes.len()));
                            iargs.push(Value::Ptr(ip));
                            let ep = emu.alloc_buffer(&bytes);
                            ebufs.push((ep, bytes.len()));
                            eargs.push(Arg::Int(ep));
                        }
                        _ => unreachable!("filtered above"),
                    }
                }
                let iret = interp.call(&item.name, &iargs);
                let eret = emu.call(&item.name, &eargs);
                match (iret, eret) {
                    (Ok(io), Ok(ev)) => {
                        if let Some(Value::Int(v, _)) = io.ret {
                            assert_eq!(
                                v as i32, ev as i32,
                                "{} {opt}: return mismatch\n{}",
                                item.name, item.func_src
                            );
                        }
                        for ((ip, len), (ep, _)) in ibufs.iter().zip(&ebufs) {
                            let ib = interp.read_buffer(*ip, *len).unwrap();
                            let eb = emu.read_buffer(*ep, *len).unwrap();
                            assert_eq!(ib, eb, "{} {opt}: buffer mismatch", item.name);
                        }
                        validated += 1;
                    }
                    // Both failing (e.g. division by zero on this input) is
                    // agreement too.
                    (Err(_), Err(_)) => validated += 1,
                    (i, e) => panic!(
                        "{} {opt}: one side failed: interp={i:?} emu={e:?}\n{}",
                        item.name, item.func_src
                    ),
                }
            }
        }
    }
    assert!(validated >= 20, "only {validated} cross-validations ran");
}

/// Same cross-validation on ARM: the AArch64 backend's output, run in the
/// ARM emulator, must agree with the interpreter on the ground-truth C.
#[test]
fn arm_backend_agrees_with_interpreter() {
    use slade_emu::ArmEmulator;
    let items = generate_train(DatasetProfile::tiny(), 57);
    let mut validated = 0;
    for item in &items {
        if !item.context_src.is_empty() {
            continue;
        }
        if !item
            .inputs
            .iter()
            .flatten()
            .all(|a| matches!(a, ArgSpec::Int(_) | ArgSpec::IntBuf(_)))
        {
            continue;
        }
        let program = parse_program(&item.full_src()).unwrap();
        for opt in [OptLevel::O0, OptLevel::O3] {
            let Ok(asm) =
                compile_function(&program, &item.name, CompileOpts::new(Isa::Arm64, opt))
            else {
                continue;
            };
            let file = parse_asm(&asm, slade_asm::Isa::Arm64);
            for input in item.inputs.iter().take(2) {
                let mut interp = Interpreter::new(&program).unwrap();
                let mut emu = ArmEmulator::new(file.clone());
                let mut iargs = Vec::new();
                let mut eargs = Vec::new();
                let mut pairs = Vec::new();
                for spec in input {
                    match spec {
                        ArgSpec::Int(v) => {
                            iargs.push(Value::long(*v));
                            eargs.push(Arg::Int(*v as u64));
                        }
                        ArgSpec::IntBuf(vs) => {
                            let bytes: Vec<u8> =
                                vs.iter().flat_map(|v| v.to_le_bytes()).collect();
                            let ip = interp.alloc_buffer(&bytes);
                            let ep = emu.alloc_buffer(&bytes);
                            pairs.push((ip, ep, bytes.len()));
                            iargs.push(Value::Ptr(ip));
                            eargs.push(Arg::Int(ep));
                        }
                        _ => unreachable!(),
                    }
                }
                let ir = interp.call(&item.name, &iargs);
                let er = emu.call(&item.name, &eargs);
                match (ir, er) {
                    (Ok(io), Ok(ev)) => {
                        if let Some(Value::Int(v, _)) = io.ret {
                            assert_eq!(
                                v as i32, ev as i32,
                                "ARM {opt} {}: return mismatch\n{}",
                                item.name, item.func_src
                            );
                        }
                        for (ip, ep, len) in &pairs {
                            assert_eq!(
                                interp.read_buffer(*ip, *len).unwrap(),
                                emu.read_buffer(*ep, *len).unwrap(),
                                "ARM {opt} {}: buffer mismatch",
                                item.name
                            );
                        }
                        validated += 1;
                    }
                    (Err(_), Err(_)) => validated += 1,
                    (i, e) => panic!(
                        "ARM {opt} {}: divergence interp={i:?} emu={e:?}\n{}",
                        item.name, item.func_src
                    ),
                }
            }
        }
    }
    assert!(validated >= 15, "only {validated} ARM cross-validations ran");
}

/// The Ghidra-like lifter's output, judged by the IO harness, should be
/// correct for most straightforward x86 -O0 items — and its lift failures
/// at -O3 must be reported as non-compiling, never as false positives.
#[test]
fn lifter_verdicts_are_sound() {
    let items = generate_train(DatasetProfile::tiny(), 77);
    let mut correct = 0;
    let mut total = 0;
    for item in items.iter().take(15) {
        let program = parse_program(&item.full_src()).unwrap();
        let Ok(asm) =
            compile_function(&program, &item.name, CompileOpts::new(Isa::X86_64, OptLevel::O0))
        else {
            continue;
        };
        let Ok(reference) = reference_observations(item) else { continue };
        match slade_baselines::ghidra_decompile(&asm, slade_asm::Isa::X86_64, &item.name) {
            Ok(hyp) => {
                let v = judge(item, &reference, &hyp, "");
                total += 1;
                if v.correct {
                    correct += 1;
                }
            }
            Err(_) => {
                total += 1;
            }
        }
    }
    assert!(total >= 8, "too few items evaluated");
    assert!(correct * 3 >= total, "lifter correct on only {correct}/{total} O0 items");
}

/// Type inference rescues a hypothesis with an unknown typedef so that the
/// IO harness can accept it — the mechanism behind the paper's Fig. 10.
#[test]
fn typeinf_rescues_unknown_typedef_hypothesis() {
    let items = generate_train(DatasetProfile::tiny(), 13);
    let item = items
        .iter()
        .find(|i| {
            i.context_src.is_empty()
                && i.func_src.starts_with("int ")
                && i.inputs[0].len() == 2
                && i.inputs[0].iter().all(|a| matches!(a, ArgSpec::Int(_)))
        })
        .expect("simple two-int item");
    let reference = reference_observations(item).unwrap();
    // A hypothesis that is semantically the ground truth but spelled with
    // an unknown typedef, as SLaDe's model does.
    let hyp = item.func_src.replacen("int ", "my_int ", 1).replace("(int ", "(my_int ");
    let v_without = judge(item, &reference, &hyp, "");
    assert!(!v_without.compiles, "should not compile without the typedef: {hyp}");
    let header = slade_typeinf::infer_missing_types(&hyp, &item.context_src).unwrap();
    let v_with = judge(item, &reference, &hyp, &header);
    assert!(v_with.compiles, "typeinf header failed: {header}");
    assert!(v_with.correct, "rescued hypothesis should pass IO");
}

/// The whole SLaDe loop at unit-test scale: train, decompile, type-infer,
/// IO-select. We only assert structural invariants (candidates produced,
/// verdicts computed), not model quality.
#[test]
fn slade_pipeline_end_to_end_tiny() {
    use slade::{SladeBuilder, TrainProfile};
    let items = generate_train(DatasetProfile::tiny(), 3);
    let slade = SladeBuilder::new(Isa::X86_64, OptLevel::O0)
        .profile(TrainProfile::tiny())
        .beam(2)
        .train(&items, 3);
    let item = &items[0];
    let program = parse_program(&item.full_src()).unwrap();
    let asm =
        compile_function(&program, &item.name, CompileOpts::new(Isa::X86_64, OptLevel::O0))
            .unwrap();
    let reference = reference_observations(item).unwrap();
    let candidates = slade.decompile_with_types(&asm, &item.context_src);
    assert!(!candidates.is_empty());
    for (hyp, header) in candidates {
        let _ = judge(item, &reference, &hyp, &header);
    }
}
