//! Failure-injection tests: every substrate must degrade with an error —
//! never a panic, never an infinite loop — when handed the malformed
//! inputs the pipeline actually produces (truncated decodes, unknown
//! instructions, runaway hypotheses, hostile pointers).

use slade::{SladeBuilder, TrainProfile};
use slade_asm::parse_asm;
use slade_baselines::ghidra_decompile;
use slade_compiler::{Isa, OptLevel};
use slade_dataset::{generate_train, DatasetProfile};
use slade_emu::{Arg, Emulator};
use slade_minic::{parse_program, Interpreter, RunLimits, Value};
use slade_tokenizer::{special, UnigramTokenizer, WordTokenizer};

// ---------------------------------------------------------------- lifter

#[test]
fn lifter_rejects_garbage_without_panicking() {
    for garbage in [
        "",
        "not assembly at all",
        "f:\n\tmovl", // truncated operand list
        "f:\n\tfrobnicate %eax, %ebx\n\tret",
        "\0\0\0\0",
        "f:\n\tjmp .Lnowhere\n\tret",
    ] {
        for isa in [slade_asm::Isa::X86_64, slade_asm::Isa::Arm64] {
            // Any Ok must at least be printable C-ish text; Err is fine.
            if let Ok(out) = ghidra_decompile(garbage, isa, "f") {
                assert!(out.len() < 1_000_000);
            }
        }
    }
}

#[test]
fn lifter_reports_unsupported_vector_instructions() {
    // The exact failure mode the paper attributes to O3 (§VII, Fig. 7):
    // SSE code the pattern tables don't cover.
    let asm = "f:\n\tmovdqu (%rdi), %xmm0\n\tpaddd %xmm1, %xmm0\n\tret\n";
    let err = ghidra_decompile(asm, slade_asm::Isa::X86_64, "f")
        .expect_err("vector code must not lift");
    let msg = err.to_string().to_lowercase();
    assert!(msg.contains("vector") || msg.contains("unsupported"), "{msg}");
}

// ------------------------------------------------------------- emulator

#[test]
fn emulator_traps_on_unknown_function() {
    let file = parse_asm("f:\n\tret\n", slade_asm::Isa::X86_64);
    let mut emu = Emulator::new(file);
    assert!(emu.call("missing", &[]).is_err());
}

#[test]
fn emulator_traps_on_wild_pointer_store() {
    let asm = "f:\n\tmovq $12345, %rax\n\tmovl %edi, (%rax)\n\tret\n";
    let file = parse_asm(asm, slade_asm::Isa::X86_64);
    let mut emu = Emulator::new(file);
    assert!(emu.call("f", &[Arg::Int(7)]).is_err(), "unmapped store must trap");
}

#[test]
fn emulator_bounds_runaway_loops() {
    let asm = "f:\n.L1:\n\tjmp .L1\n\tret\n";
    let file = parse_asm(asm, slade_asm::Isa::X86_64);
    let mut emu = Emulator::new(file);
    assert!(emu.call("f", &[]).is_err(), "infinite loop must exhaust fuel");
}

#[test]
fn emulator_read_buffer_rejects_out_of_range() {
    let file = parse_asm("f:\n\tret\n", slade_asm::Isa::X86_64);
    let emu = Emulator::new(file);
    assert!(emu.read_buffer(0xdead_beef, 16).is_err());
}

// ---------------------------------------------------------- interpreter

#[test]
fn interpreter_faults_on_division_by_zero() {
    let p = parse_program("int f(int a) { return 10 / a; }").unwrap();
    let mut i = Interpreter::new(&p).unwrap();
    assert!(i.call("f", &[Value::int(0)]).is_err());
    assert_eq!(i.call("f", &[Value::int(2)]).map(|o| o.ret.unwrap().as_i64()), Ok(5));
}

#[test]
fn interpreter_fuel_bounds_nontermination() {
    let p = parse_program("int f(void) { while (1) { } return 0; }").unwrap();
    let mut i =
        Interpreter::with_limits(&p, RunLimits { fuel: 10_000, max_depth: 16 }).unwrap();
    assert!(i.call("f", &[]).is_err(), "fuel must expire");
}

#[test]
fn interpreter_depth_bounds_runaway_recursion() {
    let p = parse_program("int f(int n) { return f(n + 1); }").unwrap();
    let mut i =
        Interpreter::with_limits(&p, RunLimits { fuel: 10_000_000, max_depth: 64 }).unwrap();
    assert!(i.call("f", &[Value::int(0)]).is_err(), "recursion depth must be bounded");
}

#[test]
fn interpreter_faults_on_null_deref() {
    let p = parse_program("int f(int *p) { return *p; }").unwrap();
    let mut i = Interpreter::new(&p).unwrap();
    assert!(i.call("f", &[Value::long(0)]).is_err());
}

#[test]
fn parser_errors_on_truncated_and_binary_input() {
    for bad in [
        "int f(",
        "int f(int a) { return",
        "struct {",
        "int f(int a) { return a; } garbage trailing tokens",
        "\u{1F980}\u{1F980}", // non-ASCII
    ] {
        assert!(parse_program(bad).is_err(), "must reject: {bad:?}");
    }
}

// ------------------------------------------------------------ tokenizer

#[test]
fn tokenizer_encodes_arbitrary_unicode_without_panicking() {
    let corpus = vec!["int f(int a) { return a; }".to_string()];
    let tok = UnigramTokenizer::train(&corpus, 100);
    for text in ["", "\u{2581}\u{2581}", "日本語のテキスト", "a\0b", "\t\r\n"] {
        let ids = tok.encode(text);
        let _ = tok.decode(&ids); // must not panic
    }
}

#[test]
fn tokenizer_decode_ignores_out_of_range_ids() {
    let corpus = vec!["abc def".to_string()];
    let tok = UnigramTokenizer::train(&corpus, 50);
    let junk: Vec<u32> = vec![0, 1, 2, 3, special::MASK, 9_999_999, u32::MAX];
    let text = tok.decode(&junk);
    assert!(text.len() < 100);
}

#[test]
fn word_tokenizer_handles_empty_and_oov_gracefully() {
    let tok = WordTokenizer::train(&["alpha beta".to_string()], 10);
    assert!(tok.encode("").is_empty());
    assert_eq!(tok.oov_rate(""), 0.0);
    let ids = tok.encode("gamma delta");
    assert!(ids.iter().all(|&i| i == special::UNK));
}

// --------------------------------------------------------- type inference

#[test]
fn type_inference_survives_garbage_hypotheses() {
    for bad in ["%%%", "", "int f( {", "typedef typedef;", "my_t f(my_t x) {"] {
        // Must not panic; any Ok header must be bounded.
        if let Ok(header) = slade_typeinf::infer_missing_types(bad, "") {
            assert!(header.len() < 10_000);
        }
    }
}

// ------------------------------------------------------------- pipeline

#[test]
fn decompiler_tolerates_degenerate_inputs() {
    let items = generate_train(DatasetProfile::tiny(), 13);
    let slade = SladeBuilder::new(Isa::X86_64, OptLevel::O0)
        .profile(TrainProfile::tiny())
        .beam(2)
        .train(&items[..10.min(items.len())], 13);
    for asm in ["", "\n\n\n", "ret", &"x".repeat(100_000)] {
        let out = slade.decompile(asm);
        assert!(out.len() <= 2, "beam width respected on {:?}...", &asm[..asm.len().min(8)]);
    }
}

#[test]
fn beam_width_zero_is_clamped_not_panicking() {
    let items = generate_train(DatasetProfile::tiny(), 14);
    let mut slade = SladeBuilder::new(Isa::X86_64, OptLevel::O0)
        .profile(TrainProfile::tiny())
        .train(&items[..6.min(items.len())], 14);
    slade.set_beam(0);
    assert_eq!(slade.beam(), 1, "zero beam must clamp to one");
    assert!(slade.decompile("f:\n\tret\n").len() <= 1);
}
