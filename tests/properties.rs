//! Property-based tests over the core substrates, using proptest.

use proptest::prelude::*;
use slade_eval::{edit_distance, edit_similarity};
use slade_minic::{parse_program, pretty_program, Interpreter, Value};
use slade_tokenizer::UnigramTokenizer;

fn training_corpus() -> Vec<String> {
    vec![
        "int add(int a, int b) { return a + b; }".to_string(),
        "void scale(int *arr, int n, int k) { for (int i = 0; i < n; i++) arr[i] *= k; }"
            .to_string(),
        "movl %edi, %eax\naddl %esi, %eax\nret".to_string(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tokenizer round-trip: encode→decode is lossless modulo whitespace
    /// normalization, for arbitrary C-flavoured ASCII.
    #[test]
    fn tokenizer_roundtrip(s in "[a-z_()+*;{}= 0-9<>-]{0,60}") {
        let tok = UnigramTokenizer::train(&training_corpus(), 200);
        let decoded = tok.decode(&tok.encode(&s));
        let norm = |t: &str| t.split_whitespace().collect::<Vec<_>>().join(" ");
        prop_assert_eq!(norm(&decoded), norm(&s));
    }

    /// Edit distance is a metric: symmetry, identity, triangle inequality.
    #[test]
    fn edit_distance_is_a_metric(a in "[ab]{0,12}", b in "[ab]{0,12}", c in "[ab]{0,12}") {
        prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        prop_assert_eq!(edit_distance(&a, &a), 0);
        prop_assert!(edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c));
    }

    /// Edit similarity is bounded in [0, 1].
    #[test]
    fn edit_similarity_bounded(a in ".{0,40}", b in ".{1,40}") {
        let s = edit_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    /// Pretty-print → reparse → execute preserves semantics for a family
    /// of arithmetic functions.
    #[test]
    fn printer_preserves_arithmetic_semantics(k1 in -20i64..20, k2 in 1i64..10, x in -50i64..50) {
        let src = format!("int f(int x) {{ int t = x * {k1} + {k2}; if (t > 0) t /= {k2}; return t; }}");
        let p1 = parse_program(&src).unwrap();
        let printed = pretty_program(&p1);
        let p2 = parse_program(&printed).unwrap();
        let mut i1 = Interpreter::new(&p1).unwrap();
        let mut i2 = Interpreter::new(&p2).unwrap();
        let a = i1.call("f", &[Value::int(x)]).unwrap().ret;
        let b = i2.call("f", &[Value::int(x)]).unwrap().ret;
        prop_assert_eq!(a, b);
    }

    /// The interpreter is deterministic: two fresh instances agree.
    #[test]
    fn interpreter_is_deterministic(x in -100i64..100, y in -100i64..100) {
        let src = "int f(int a, int b) { int s = 0; for (int i = 0; i < 8; i++) s += (a ^ i) & (b | i); return s; }";
        let p = parse_program(src).unwrap();
        let mut i1 = Interpreter::new(&p).unwrap();
        let mut i2 = Interpreter::new(&p).unwrap();
        let a = i1.call("f", &[Value::int(x), Value::int(y)]).unwrap().ret;
        let b = i2.call("f", &[Value::int(x), Value::int(y)]).unwrap().ret;
        prop_assert_eq!(a, b);
    }

    /// -O3 compilation preserves semantics versus -O0, checked through the
    /// x86 emulator on random inputs (the pass-pipeline soundness property).
    #[test]
    fn o3_preserves_semantics_vs_o0(x in -40i64..40, n in 1i64..8) {
        use slade_compiler::{compile_function, CompileOpts, Isa, OptLevel};
        use slade_emu::{Arg, Emulator};
        let src = "int f(int x, int n) { int s = 0; for (int i = 0; i < n; i++) { s += x * i; if (s > 100) s -= 7; } return s; }";
        let p = parse_program(src).unwrap();
        let mut results = Vec::new();
        for opt in [OptLevel::O0, OptLevel::O3] {
            let asm = compile_function(&p, "f", CompileOpts::new(Isa::X86_64, opt)).unwrap();
            let file = slade_asm::parse_asm(&asm, slade_asm::Isa::X86_64);
            let mut emu = Emulator::new(file);
            let r = emu.call("f", &[Arg::Int(x as u64), Arg::Int(n as u64)]).unwrap();
            results.push(r as i32);
        }
        prop_assert_eq!(results[0], results[1]);
    }

    /// The same soundness property on the AArch64 backend and emulator —
    /// the portability claim rests on both backends being trustworthy.
    #[test]
    fn arm_o3_preserves_semantics_vs_o0(x in -40i64..40, n in 1i64..8) {
        use slade_compiler::{compile_function, CompileOpts, Isa, OptLevel};
        use slade_emu::{Arg, ArmEmulator};
        let src = "int f(int x, int n) { int s = 0; for (int i = 0; i < n; i++) { s += x * i; if (s > 100) s -= 7; } return s; }";
        let p = parse_program(src).unwrap();
        let mut results = Vec::new();
        for opt in [OptLevel::O0, OptLevel::O3] {
            let asm = compile_function(&p, "f", CompileOpts::new(Isa::Arm64, opt)).unwrap();
            let file = slade_asm::parse_asm(&asm, slade_asm::Isa::Arm64);
            let mut emu = ArmEmulator::new(file);
            let r = emu.call("f", &[Arg::Int(x as u64), Arg::Int(n as u64)]).unwrap();
            results.push(r as i32);
        }
        prop_assert_eq!(results[0], results[1]);
    }

    /// Cross-ISA agreement: x86 and ARM builds of the same function agree
    /// with each other on every input (both via their emulators).
    #[test]
    fn isas_agree_on_integer_functions(a in -30i64..30, b in -30i64..30) {
        use slade_compiler::{compile_function, CompileOpts, Isa, OptLevel};
        use slade_emu::{Arg, ArmEmulator, Emulator};
        let src = "int f(int a, int b) { int m = a > b ? a : b; return m * 3 - (a ^ b); }";
        let p = parse_program(src).unwrap();
        let x86 = compile_function(&p, "f", CompileOpts::new(Isa::X86_64, OptLevel::O3)).unwrap();
        let arm = compile_function(&p, "f", CompileOpts::new(Isa::Arm64, OptLevel::O3)).unwrap();
        let rx = Emulator::new(slade_asm::parse_asm(&x86, slade_asm::Isa::X86_64))
            .call("f", &[Arg::Int(a as u64), Arg::Int(b as u64)]).unwrap() as i32;
        let ra = ArmEmulator::new(slade_asm::parse_asm(&arm, slade_asm::Isa::Arm64))
            .call("f", &[Arg::Int(a as u64), Arg::Int(b as u64)]).unwrap() as i32;
        prop_assert_eq!(rx, ra);
    }

    /// Pearson correlation is bounded in [-1, 1], symmetric, and exactly
    /// ±1 for perfectly linearly related series.
    #[test]
    fn pearson_properties(xs in prop::collection::vec(-100.0f64..100.0, 3..20), k in 1.0f64..5.0) {
        use slade_eval::pearson;
        let ys: Vec<f64> = xs.iter().map(|v| v * k + 1.0).collect();
        let neg: Vec<f64> = xs.iter().map(|v| -v * k).collect();
        let r = pearson(&xs, &ys);
        // Degenerate (constant) series yield 0 by convention.
        let constant = xs.iter().all(|v| (v - xs[0]).abs() < 1e-12);
        if !constant {
            prop_assert!((r - 1.0).abs() < 1e-6, "r = {r}");
            prop_assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-6);
        }
        prop_assert!((-1.0001..=1.0001).contains(&pearson(&ys, &neg)));
        prop_assert_eq!(pearson(&xs, &ys), pearson(&ys, &xs));
    }

    /// Dataset generation is deterministic in the seed, and different seeds
    /// give different corpora (no accidental global state).
    #[test]
    fn dataset_generation_is_seed_deterministic(seed in 0u64..500) {
        use slade_dataset::{generate_train, DatasetProfile};
        let a = generate_train(DatasetProfile::tiny(), seed);
        let b = generate_train(DatasetProfile::tiny(), seed);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.func_src, &y.func_src);
            prop_assert_eq!(&x.context_src, &y.context_src);
        }
    }

    /// Tokenizer round-trip through string literals: quoted spaces survive
    /// exactly (the metaspace rule), for arbitrary quoted words.
    #[test]
    fn tokenizer_roundtrip_string_literals(w1 in "[a-z]{1,6}", w2 in "[a-z]{1,6}") {
        let src = format!("char *s = \"{w1} {w2}\";");
        let mut corpus = training_corpus();
        corpus.push(src.clone());
        let tok = UnigramTokenizer::train(&corpus, 200);
        let decoded = tok.decode(&tok.encode(&src));
        prop_assert!(decoded.contains(&format!("\"{w1} {w2}\"")), "{decoded}");
    }

    /// Repairing ground-truth functions from the dataset never modifies
    /// them (repair is conservative on valid code).
    #[test]
    fn repair_never_touches_valid_dataset_items(seed in 0u64..50) {
        use slade_dataset::{generate_train, DatasetProfile};
        use slade_repair::repair;
        let items = generate_train(DatasetProfile { train: 3, exebench_eval: 0, synth_per_category: 0 }, seed);
        for item in &items {
            let report = repair(&item.func_src, &item.context_src);
            prop_assert!(report.was_already_valid(), "item {} was altered", item.name);
        }
    }
}
